type t = { bits : Bytes.t; bit_count : int; hashes : int }

let create ~expected_entries ?(bits_per_key = 10) () =
  if expected_entries < 0 || bits_per_key <= 0 then invalid_arg "Bloom.create";
  let bit_count = max 64 (expected_entries * bits_per_key) in
  (* k = ln 2 * bits/key, clamped to [1, 30]. *)
  let hashes = max 1 (min 30 (int_of_float (0.69 *. float_of_int bits_per_key))) in
  { bits = Bytes.make ((bit_count + 7) / 8) '\000'; bit_count; hashes }

let set_bit t i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) lor mask))

let get_bit t i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Char.code (Bytes.unsafe_get t.bits byte) land mask <> 0

(* Double hashing: h1 + i*h2, the standard Kirsch-Mitzenmacher scheme. *)
let hash_pair key =
  let h1 = Hashtbl.hash key in
  let h2 = Hashtbl.hash (key ^ "\x00bloom") in
  (abs h1, abs h2 lor 1)

let add t key =
  let h1, h2 = hash_pair key in
  for i = 0 to t.hashes - 1 do
    set_bit t ((h1 + (i * h2)) mod t.bit_count)
  done

let mem t key =
  let h1, h2 = hash_pair key in
  let rec probe i = i >= t.hashes || (get_bit t ((h1 + (i * h2)) mod t.bit_count) && probe (i + 1)) in
  probe 0

let of_keys keys =
  let t = create ~expected_entries:(List.length keys) () in
  List.iter (add t) keys;
  t

let bit_count t = t.bit_count

let estimated_fpr t ~entries =
  let m = float_of_int t.bit_count and n = float_of_int entries in
  let k = float_of_int t.hashes in
  (1.0 -. exp (-.k *. n /. m)) ** k
