lib/kv/bloom.mli:
