lib/kv/skiplist.ml: Array List Obj Option Tq_util
