lib/kv/bloom.ml: Bytes Char Hashtbl List
