lib/kv/store.mli:
