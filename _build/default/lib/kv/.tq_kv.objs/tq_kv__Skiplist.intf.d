lib/kv/skiplist.mli:
