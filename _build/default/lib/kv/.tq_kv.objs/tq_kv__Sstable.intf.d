lib/kv/sstable.mli:
