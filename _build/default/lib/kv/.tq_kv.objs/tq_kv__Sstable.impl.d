lib/kv/sstable.ml: Array List
