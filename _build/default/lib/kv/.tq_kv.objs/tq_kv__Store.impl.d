lib/kv/store.ml: Array Bloom Fun List Option Skiplist Sstable Tq_util
