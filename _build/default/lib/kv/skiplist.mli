(** Probabilistic skip list: the store's memtable.

    String keys in lexicographic order; expected O(log n) search and
    insert.  Node "addresses" are synthetic (allocation-ordered, 64-byte
    spaced) so lookups can emit memory traces for the cache study. *)

type 'a t

(** [create ~seed ()] — tower heights are drawn from a seeded PRNG so
    structures are reproducible. *)
val create : ?seed:int64 -> unit -> 'a t

val length : 'a t -> int

(** [insert t key v] adds or overwrites. *)
val insert : 'a t -> string -> 'a -> unit

val find : 'a t -> string -> 'a option
val mem : 'a t -> string -> bool

(** [iter_from t key f] applies [f] to every binding with key >= [key],
    ascending, until [f] returns false. *)
val iter_from : 'a t -> string -> (string -> 'a -> bool) -> unit

(** Streaming cursors (used by the store's merge iterator). *)

type 'a cursor

(** [seek t key] positions before the first binding with key >= [key]. *)
val seek : 'a t -> string -> 'a cursor

(** [cursor_next c] returns the binding under the cursor and advances;
    [None] at the end.  Touches the tracer like [find]. *)
val cursor_next : 'a cursor -> (string * 'a) option

(** [to_sorted_list t] — all bindings ascending. *)
val to_sorted_list : 'a t -> (string * 'a) list

(** [set_tracer t f] — [f] receives the synthetic address of every node
    touched by subsequent operations; [None] disables. *)
val set_tracer : 'a t -> (int -> unit) option -> unit

val min_binding : 'a t -> (string * 'a) option
val max_binding : 'a t -> (string * 'a) option
