(** Immutable sorted runs (in-memory SSTables).

    A run is a sorted array of bindings produced by flushing the
    memtable or by compaction.  Point lookups binary-search; scans walk
    a contiguous range.  Entries carry synthetic addresses for trace
    recording. *)

type 'a t

(** [of_sorted ~base_address bindings] — keys must be strictly
    ascending; raises [Invalid_argument] otherwise. *)
val of_sorted : base_address:int -> (string * 'a) list -> 'a t

val length : 'a t -> int
val find : ?trace:(int -> unit) -> 'a t -> string -> 'a option

(** [iter_from ?trace t key f] — bindings with key >= [key] ascending
    while [f] returns true. *)
val iter_from : ?trace:(int -> unit) -> 'a t -> string -> (string -> 'a -> bool) -> unit

(** Streaming cursors. *)

type 'a cursor

(** [seek ?trace t key] — positioned at the first binding >= [key]. *)
val seek : ?trace:(int -> unit) -> 'a t -> string -> 'a cursor

(** [cursor_next c] — binding under the cursor, then advance. *)
val cursor_next : 'a cursor -> (string * 'a) option

val min_key : 'a t -> string option
val max_key : 'a t -> string option

(** [merge runs] — combine runs into one sorted list; on duplicate keys
    the earliest run in the list wins (newest-first ordering). *)
val merge : (string * 'a) list list -> (string * 'a) list
