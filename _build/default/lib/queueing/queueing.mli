(** Closed-form queueing results.

    Ground truth for validating the simulator: the test suite runs the
    DES models against these formulas (M/M/1, M/M/k via Erlang C, M/G/1
    via Pollaczek-Khinchine, M/M/1-PS) and requires agreement.  The
    paper leans on the same theory: processor sharing is tail-optimal
    for heavy-tailed service (Section 3.2), and JSQ-PS approximates the
    central M/G/K/PS queue.

    Conventions: [lambda] = arrival rate, [mu] = service rate of one
    server (both per unit time); utilization rho = lambda / (k mu) must
    be < 1 for stationary results. *)

(** [utilization ~lambda ~mu ~servers]. *)
val utilization : lambda:float -> mu:float -> servers:int -> float

(** {2 M/M/1 (FCFS)} *)

(** Mean number in system: rho / (1 - rho). *)
val mm1_mean_jobs : lambda:float -> mu:float -> float

(** Mean sojourn (wait + service): 1 / (mu - lambda). *)
val mm1_mean_sojourn : lambda:float -> mu:float -> float

(** Sojourn-time p-quantile (sojourn is exponential in M/M/1 FCFS). *)
val mm1_sojourn_quantile : lambda:float -> mu:float -> p:float -> float

(** {2 M/M/k (FCFS)} *)

(** Erlang C: probability an arrival must queue. *)
val erlang_c : lambda:float -> mu:float -> servers:int -> float

(** Mean queueing delay (excluding service). *)
val mmk_mean_wait : lambda:float -> mu:float -> servers:int -> float

(** Mean sojourn = wait + 1/mu. *)
val mmk_mean_sojourn : lambda:float -> mu:float -> servers:int -> float

(** {2 M/G/1 (FCFS)} *)

(** Pollaczek-Khinchine mean wait from the first two service moments:
    lambda E[S^2] / (2 (1 - rho)). *)
val mg1_mean_wait : lambda:float -> mean_service:float -> second_moment:float -> float

val mg1_mean_sojourn : lambda:float -> mean_service:float -> second_moment:float -> float

(** {2 M/M/1-PS (processor sharing)} *)

(** Mean sojourn of a job with service requirement [x]: x / (1 - rho) —
    the "slowdown is uniform" property that makes PS tail-friendly. *)
val mm1_ps_mean_sojourn_for : lambda:float -> mu:float -> x:float -> float

(** Expected slowdown under PS: 1 / (1 - rho), independent of x. *)
val ps_expected_slowdown : rho:float -> float
