let check_stable rho =
  if rho < 0.0 || rho >= 1.0 then
    invalid_arg (Printf.sprintf "Queueing: utilization %.3f not in [0, 1)" rho)

let utilization ~lambda ~mu ~servers =
  if lambda < 0.0 || mu <= 0.0 || servers < 1 then invalid_arg "Queueing.utilization";
  lambda /. (float_of_int servers *. mu)

let mm1_mean_jobs ~lambda ~mu =
  let rho = utilization ~lambda ~mu ~servers:1 in
  check_stable rho;
  rho /. (1.0 -. rho)

let mm1_mean_sojourn ~lambda ~mu =
  let rho = utilization ~lambda ~mu ~servers:1 in
  check_stable rho;
  1.0 /. (mu -. lambda)

let mm1_sojourn_quantile ~lambda ~mu ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Queueing.mm1_sojourn_quantile: p in (0,1)";
  let mean = mm1_mean_sojourn ~lambda ~mu in
  -.mean *. log (1.0 -. p)

let erlang_c ~lambda ~mu ~servers =
  let k = servers in
  let rho = utilization ~lambda ~mu ~servers in
  check_stable rho;
  let a = lambda /. mu in
  (* a^k / k! computed incrementally to avoid overflow. *)
  let term = ref 1.0 in
  let sum = ref 1.0 in
  for n = 1 to k - 1 do
    term := !term *. a /. float_of_int n;
    sum := !sum +. !term
  done;
  let a_k_over_kfact = !term *. a /. float_of_int k in
  let numerator = a_k_over_kfact /. (1.0 -. rho) in
  numerator /. (!sum +. numerator)

let mmk_mean_wait ~lambda ~mu ~servers =
  let rho = utilization ~lambda ~mu ~servers in
  check_stable rho;
  let c = erlang_c ~lambda ~mu ~servers in
  c /. ((float_of_int servers *. mu) -. lambda)

let mmk_mean_sojourn ~lambda ~mu ~servers =
  mmk_mean_wait ~lambda ~mu ~servers +. (1.0 /. mu)

let mg1_mean_wait ~lambda ~mean_service ~second_moment =
  let rho = lambda *. mean_service in
  check_stable rho;
  lambda *. second_moment /. (2.0 *. (1.0 -. rho))

let mg1_mean_sojourn ~lambda ~mean_service ~second_moment =
  mg1_mean_wait ~lambda ~mean_service ~second_moment +. mean_service

let ps_expected_slowdown ~rho =
  check_stable rho;
  1.0 /. (1.0 -. rho)

let mm1_ps_mean_sojourn_for ~lambda ~mu ~x =
  let rho = utilization ~lambda ~mu ~servers:1 in
  check_stable rho;
  x /. (1.0 -. rho)
