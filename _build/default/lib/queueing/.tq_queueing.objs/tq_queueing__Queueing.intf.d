lib/queueing/queueing.mli:
