lib/queueing/queueing.ml: Printf
