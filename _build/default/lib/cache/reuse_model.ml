type params = { cores : int; jobs_per_core : int; array_bytes : int }

let amplification ~framework p =
  match (framework : Pointer_chase.framework) with
  | Pointer_chase.Ct -> p.cores * p.jobs_per_core
  | Pointer_chase.Tls -> p.jobs_per_core

let first_access_distance ~framework p = amplification ~framework p * p.array_bytes
let repeat_access_distance p = p.array_bytes

let fraction_first_in_quantum ~quantum_accesses ?(line_bytes = 64) p =
  let lines = max 1 (p.array_bytes / line_bytes) in
  Float.min 1.0 (float_of_int lines /. float_of_int (max 1 quantum_accesses))

let predict_miss ~framework ~capacity_bytes p =
  first_access_distance ~framework p >= capacity_bytes
