(** Exact reuse-distance analysis.

    The reuse distance of an access is the number of *distinct* line
    addresses touched since the previous access to the same line.  For a
    fully associative LRU cache of capacity C lines, an access hits iff
    its reuse distance is below C — the property the paper's Table 2
    analysis builds on.

    Computed with the classic last-occurrence + Fenwick-tree algorithm
    in O(n log n). *)

type profile

(** [analyze ?line_bytes trace] — [trace] is a sequence of byte
    addresses; distances are reported in *bytes* (distinct lines times
    line size), with cold (first-ever) accesses reported separately. *)
val analyze : ?line_bytes:int -> int array -> profile

(** [histogram p] — reuse distances in bytes, log-bucketed. *)
val histogram : profile -> Tq_stats.Histogram.t

(** [fraction_above p ~bytes] — fraction of (non-cold) accesses with
    reuse distance strictly greater than [bytes]. *)
val fraction_above : profile -> bytes:int -> float

val cold_accesses : profile -> int
val total_accesses : profile -> int

(** [hit_fraction p ~capacity_bytes] — fraction of all accesses a fully
    associative LRU cache of that capacity would hit (cold misses count
    as misses). *)
val hit_fraction : profile -> capacity_bytes:int -> float
