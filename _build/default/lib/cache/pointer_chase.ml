module Prng = Tq_util.Prng

type framework = Tls | Ct
type access_order = Random_order | Sequential

type config = {
  framework : framework;
  access_order : access_order;
  prefetch : bool;
  cores : int;
  arrays_per_core : int;
  array_bytes : int;
  quantum_accesses : int;
  target_accesses_per_core : int;
  seed : int64;
}

type result = {
  mean_latency_cycles : float;
  l1_miss_rate : float;
  l2_miss_rate : float;
  total_accesses : int;
}

(* One array: a base address, a fixed random visiting order over its
   lines, and a cursor (progress persists across quanta, like a
   preempted job resuming). *)
type chase_array = { base : int; order : int array; mutable cursor : int }

let make_array rng ~order:access_order ~base ~array_bytes ~line_bytes =
  let lines = max 1 (array_bytes / line_bytes) in
  let order = Array.init lines (fun i -> i) in
  (match access_order with
  | Random_order -> Prng.shuffle rng order
  | Sequential -> ());
  { base; order; cursor = 0 }

let quantum_accesses_of_ns ns =
  let cycles = Tq_util.Time_unit.ns_to_cycles ns in
  max 1 (cycles / 8)

let run ?(geometry = Hierarchy.default_geometry) config =
  if config.cores < 1 || config.arrays_per_core < 1 then
    invalid_arg "Pointer_chase.run: bad config";
  let rng = Prng.create ~seed:config.seed in
  let line = geometry.line_bytes in
  let n_arrays = config.cores * config.arrays_per_core in
  (* Each array lives in its own disjoint region, with a random
     line-aligned offset so arrays do not collide on the same cache sets
     (real allocations are not region-aligned). *)
  let region = Int.shift_left 1 30 in
  let arrays =
    Array.init n_arrays (fun i ->
        let offset = Prng.int rng (Int.shift_left 1 22) * line in
        make_array rng ~order:config.access_order ~base:((i * region) + offset)
          ~array_bytes:config.array_bytes ~line_bytes:line)
  in
  let shared = Hierarchy.create_shared ~geometry () in
  let cores =
    Array.init config.cores (fun _ ->
        Hierarchy.create_core ~prefetch:config.prefetch shared)
  in
  (* Which array each core runs next: TLS rotates within the core's own
     slice; CT rotates through the global list. *)
  let tls_next = Array.make config.cores 0 in
  let ct_next = ref 0 in
  let rounds = max 1 (config.target_accesses_per_core / config.quantum_accesses) in
  let total_latency = ref 0 and total_accesses = ref 0 in
  let measuring = ref false in
  let run_quantum core_idx =
    let arr =
      match config.framework with
      | Tls ->
          let slot = tls_next.(core_idx) in
          tls_next.(core_idx) <- (slot + 1) mod config.arrays_per_core;
          arrays.((core_idx * config.arrays_per_core) + slot)
      | Ct ->
          let slot = !ct_next in
          ct_next := (slot + 1) mod n_arrays;
          arrays.(slot)
    in
    let hierarchy = cores.(core_idx) in
    let lines = Array.length arr.order in
    for _ = 1 to config.quantum_accesses do
      let addr = arr.base + (arr.order.(arr.cursor) * line) in
      arr.cursor <- (arr.cursor + 1) mod lines;
      let latency = Hierarchy.access hierarchy addr in
      if !measuring then begin
        total_latency := !total_latency + latency;
        incr total_accesses
      end
    done
  in
  (* Warm-up: one full pass of quanta unmeasured, then measured rounds.
     Cores interleave quantum by quantum, as 16 cores running in
     parallel would. *)
  let warmup = max 1 (rounds / 4) in
  for round = 1 to warmup + rounds do
    if round = warmup + 1 then begin
      measuring := true;
      Array.iter
        (fun c ->
          (* Reset private-level stats at the measurement boundary. *)
          ignore (Hierarchy.l1_miss_rate c);
          ())
        cores
    end;
    for core = 0 to config.cores - 1 do
      run_quantum core
    done;
    (* Shift the CT rotation so cores do not lock onto a fixed subset
       when the array count is a multiple of the core count. *)
    if config.framework = Ct then ct_next := (!ct_next + 1) mod n_arrays
  done;
  {
    mean_latency_cycles = float_of_int !total_latency /. float_of_int (max 1 !total_accesses);
    l1_miss_rate =
      Array.fold_left (fun acc c -> acc +. Hierarchy.l1_miss_rate c) 0.0 cores
      /. float_of_int config.cores;
    l2_miss_rate =
      Array.fold_left (fun acc c -> acc +. Hierarchy.l2_miss_rate c) 0.0 cores
      /. float_of_int config.cores;
    total_accesses = !total_accesses;
  }
