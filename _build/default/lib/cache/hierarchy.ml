type geometry = {
  l1_bytes : int;
  l1_ways : int;
  l1_latency : int;
  l2_bytes : int;
  l2_ways : int;
  l2_latency : int;
  l3_bytes : int;
  l3_ways : int;
  l3_latency : int;
  mem_latency : int;
  line_bytes : int;
}

let default_geometry =
  {
    l1_bytes = 32 * 1024;
    l1_ways = 8;
    l1_latency = 4;
    l2_bytes = 1024 * 1024;
    l2_ways = 16;
    l2_latency = 14;
    l3_bytes = 64 * 1024 * 1024;
    l3_ways = 16;
    l3_latency = 50;
    mem_latency = 120;
    line_bytes = 64;
  }

type shared = { geo : geometry; l3 : Cache.t }

let create_shared ?(geometry = default_geometry) () =
  {
    geo = geometry;
    l3 =
      Cache.create ~size_bytes:geometry.l3_bytes ~ways:geometry.l3_ways
        ~line_bytes:geometry.line_bytes ();
  }

type t = { shared : shared; l1 : Cache.t; l2 : Cache.t; prefetch : bool }

let create_core ?(prefetch = false) shared =
  let geo = shared.geo in
  {
    shared;
    l1 = Cache.create ~size_bytes:geo.l1_bytes ~ways:geo.l1_ways ~line_bytes:geo.line_bytes ();
    l2 = Cache.create ~size_bytes:geo.l2_bytes ~ways:geo.l2_ways ~line_bytes:geo.line_bytes ();
    prefetch;
  }

let install_everywhere t addr =
  ignore (Cache.access t.l1 addr : bool);
  ignore (Cache.access t.l2 addr : bool);
  ignore (Cache.access t.shared.l3 addr : bool)

let access t addr =
  let geo = t.shared.geo in
  (* Idealized stream prefetcher: keep one line of run-ahead on every
     access, so a sequential stream only ever misses its first line. *)
  if t.prefetch then install_everywhere t (addr + geo.line_bytes);
  if Cache.access t.l1 addr then geo.l1_latency
  else if Cache.access t.l2 addr then geo.l2_latency
  else if Cache.access t.shared.l3 addr then geo.l3_latency
  else geo.mem_latency

let l1_miss_rate t = Cache.miss_rate t.l1
let l2_miss_rate t = Cache.miss_rate t.l2
let geometry t = t.shared.geo
