(** The Section 5.5 microbenchmark: random pointer chasing through
    arrays, under emulated two-level (TLS) or centralized (CT)
    scheduling.

    Each core interleaves quanta of "jobs" where a job iterates over its
    array in a fixed random order.  A quantum is [quantum_accesses]
    element accesses.  Under TLS every core owns its own set of arrays
    (jobs stay on one core); under CT arrays are shared by all cores and
    cores pick them up in global rotation (quanta of a job land on
    different cores).  Random ordering defeats the (unmodeled) hardware
    prefetcher and exposes capacity behaviour, as in the paper. *)

type framework = Tls | Ct

(** Element visiting order: [Random_order] (the paper's choice — defeats
    prefetching and exposes capacity misses) or [Sequential]. *)
type access_order = Random_order | Sequential

type config = {
  framework : framework;
  access_order : access_order;
  prefetch : bool;  (** next-line hardware prefetcher model *)
  cores : int;  (** default experiments use 16 *)
  arrays_per_core : int;  (** the paper uses 4 jobs per core *)
  array_bytes : int;
  quantum_accesses : int;  (** accesses per quantum, X in the paper *)
  target_accesses_per_core : int;
      (** measured accesses per core, independent of the quantum size so
          configurations are comparable *)
  seed : int64;
}

type result = {
  mean_latency_cycles : float;
  l1_miss_rate : float;  (** averaged over cores *)
  l2_miss_rate : float;
  total_accesses : int;
}

(** [run ?geometry config] simulates and reports mean access latency. *)
val run : ?geometry:Hierarchy.geometry -> config -> result

(** [quantum_accesses_of_ns ns] converts a quantum length to an access
    budget (the paper sets X to match the target quantum; we assume ~8
    cycles per access at 2.1 GHz). *)
val quantum_accesses_of_ns : int -> int
