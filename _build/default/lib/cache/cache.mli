(** One level of a set-associative LRU cache.

    Addresses are byte addresses; lookups operate on line granularity.
    True-LRU replacement, which makes the reuse-distance analysis of
    Table 2 exact for capacity behaviour. *)

type t

(** [create ~size_bytes ~ways ~line_bytes ()] — sizes must give a
    power-of-two number of sets. *)
val create : size_bytes:int -> ways:int -> ?line_bytes:int -> unit -> t

(** [access t addr] — true on hit; on miss the line is installed,
    evicting the LRU way. *)
val access : t -> int -> bool

(** [probe t addr] — hit test without any state change. *)
val probe : t -> int -> bool

val size_bytes : t -> int
val line_bytes : t -> int
val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
val clear : t -> unit
