module Fenwick = Tq_util.Fenwick
module Histogram = Tq_stats.Histogram

type profile = { hist : Histogram.t; cold : int; total : int }

let analyze ?(line_bytes = 64) trace =
  let n = Array.length trace in
  let hist = Histogram.create ~sub_buckets:32 ~max_value:(1 lsl 34) () in
  if n = 0 then { hist; cold = 0; total = 0 }
  else begin
    (* Fenwick over trace positions: a 1 at position i means "the line
       accessed at i has not been re-accessed since" — so the number of
       1s strictly after the previous occurrence of the current line is
       exactly the number of distinct lines touched in between. *)
    let fen = Fenwick.create n in
    let last : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    let cold = ref 0 in
    Array.iteri
      (fun i addr ->
        let line = addr / line_bytes in
        (match Hashtbl.find_opt last line with
        | None -> incr cold
        | Some prev ->
            let distinct = Fenwick.range_sum fen ~lo:(prev + 1) ~hi:(i - 1) in
            Histogram.record hist (distinct * line_bytes);
            Fenwick.add fen prev (-1));
        Hashtbl.replace last line i;
        Fenwick.add fen i 1)
      trace;
    { hist; cold = !cold; total = n }
  end

let histogram p = p.hist
let fraction_above p ~bytes = Histogram.fraction_above p.hist bytes
let cold_accesses p = p.cold
let total_accesses p = p.total

let hit_fraction p ~capacity_bytes =
  if p.total = 0 then nan
  else begin
    let hits = ref 0 in
    Histogram.iter_buckets p.hist (fun ~lo ~hi ~count ->
        if hi - 1 < capacity_bytes then hits := !hits + count
        else if lo < capacity_bytes then begin
          (* Straddling bucket: apportion linearly. *)
          let width = hi - lo in
          let under = capacity_bytes - lo in
          hits := !hits + (count * under / width)
        end);
    float_of_int !hits /. float_of_int p.total
  end
