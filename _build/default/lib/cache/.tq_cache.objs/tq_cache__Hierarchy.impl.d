lib/cache/hierarchy.ml: Cache
