lib/cache/reuse_distance.ml: Array Hashtbl Tq_stats Tq_util
