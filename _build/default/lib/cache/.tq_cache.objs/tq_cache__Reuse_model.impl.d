lib/cache/reuse_model.ml: Float Pointer_chase
