lib/cache/pointer_chase.mli: Hierarchy
