lib/cache/cache.mli:
