lib/cache/cache.ml: Array
