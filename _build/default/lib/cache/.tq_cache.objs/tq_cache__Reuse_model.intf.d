lib/cache/reuse_model.mli: Pointer_chase
