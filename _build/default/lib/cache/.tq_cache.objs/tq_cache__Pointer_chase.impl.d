lib/cache/pointer_chase.ml: Array Hierarchy Int Tq_util
