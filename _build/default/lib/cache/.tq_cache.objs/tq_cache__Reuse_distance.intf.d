lib/cache/reuse_distance.mli: Tq_stats
