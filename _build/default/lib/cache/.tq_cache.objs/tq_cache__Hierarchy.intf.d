lib/cache/hierarchy.mli:
