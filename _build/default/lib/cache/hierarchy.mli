(** A per-core cache hierarchy with a shared last-level cache.

    Geometry and latencies default to the paper's testbed (Xeon 8176):
    32 KB 8-way L1D (4 cycles), 1 MB 16-way private L2 (14 cycles),
    shared L3 (50 cycles; 64 MB standing in for the
    testbed's 38.5 MB, which has no power-of-two set count), DRAM 120
    cycles. *)

type geometry = {
  l1_bytes : int;
  l1_ways : int;
  l1_latency : int;
  l2_bytes : int;
  l2_ways : int;
  l2_latency : int;
  l3_bytes : int;
  l3_ways : int;
  l3_latency : int;
  mem_latency : int;
  line_bytes : int;
}

val default_geometry : geometry

(** A shared L3, created once per experiment. *)
type shared

val create_shared : ?geometry:geometry -> unit -> shared

(** A core's private L1/L2 on top of a shared L3.  [prefetch] enables an
    idealized next-line prefetcher: on an L1 miss, the following line is
    installed throughout the hierarchy at no charge — enough to show how
    sequential access patterns conceal preemption-induced misses (the
    methodology point of Section 5.5). *)
type t

val create_core : ?prefetch:bool -> shared -> t

(** [access t addr] returns the access latency in cycles, updating all
    levels (fill on miss). *)
val access : t -> int -> int

(** Per-core private-level statistics. *)
val l1_miss_rate : t -> float

val l2_miss_rate : t -> float
val geometry : t -> geometry
