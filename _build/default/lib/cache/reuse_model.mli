(** Table 2: the analytical reuse-distance model for the pointer-chase
    workload under centralized (CT) vs two-level (TLS) scheduling.

    Under preemption, the reuse distance of an access depends on whether
    it is the first access to its element within the current quantum:
    if so, the previous access happened in an earlier quantum and the
    distance is amplified by every job that shared the cache in between
    — all C*J jobs under CT (quanta migrate across cores), only the J
    co-resident jobs under TLS (jobs are pinned). *)

type params = {
  cores : int;  (** C *)
  jobs_per_core : int;  (** J *)
  array_bytes : int;  (** A *)
}

(** Reuse distance (bytes) of a *first-in-quantum* access. *)
val first_access_distance : framework:Pointer_chase.framework -> params -> int

(** Reuse distance (bytes) of a repeat access within the quantum. *)
val repeat_access_distance : params -> int

(** [amplification ~framework p] — the factor multiplying the array
    size: C*J for CT, J for TLS. *)
val amplification : framework:Pointer_chase.framework -> params -> int

(** [fraction_first_in_quantum ~quantum_accesses p ~line_bytes] — the
    expected fraction of accesses that are first-in-quantum: with an
    array of N lines visited cyclically and quanta of X accesses, a
    quantum revisits a line only if X > N, so the fraction is
    min(1, N/X). *)
val fraction_first_in_quantum : quantum_accesses:int -> ?line_bytes:int -> params -> float

(** [predict_miss ~framework ~capacity_bytes p] — does the amplified
    first-access distance exceed the given cache capacity? *)
val predict_miss : framework:Pointer_chase.framework -> capacity_bytes:int -> params -> bool
