type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  line_shift : int;
  set_mask : int;
  tags : int array;  (** sets * ways, -1 = invalid *)
  stamps : int array;  (** LRU timestamps *)
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_int n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~size_bytes ~ways ?(line_bytes = 64) () =
  if size_bytes <= 0 || ways <= 0 then invalid_arg "Cache.create: bad geometry";
  if not (is_power_of_two line_bytes) then invalid_arg "Cache.create: line size";
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 then invalid_arg "Cache.create: ways do not divide lines";
  let sets = lines / ways in
  if not (is_power_of_two sets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  {
    sets;
    ways;
    line_bytes;
    line_shift = log2_int line_bytes;
    set_mask = sets - 1;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    tick = 0;
    accesses = 0;
    misses = 0;
  }

let locate t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  (line, set * t.ways)

let probe t addr =
  let line, base = locate t addr in
  let rec scan i = if i = t.ways then false else t.tags.(base + i) = line || scan (i + 1) in
  scan 0

let access t addr =
  let line, base = locate t addr in
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  let hit_way = ref (-1) in
  let victim = ref 0 and victim_stamp = ref max_int in
  for i = 0 to t.ways - 1 do
    let idx = base + i in
    if t.tags.(idx) = line then hit_way := i
    else if t.tags.(idx) = -1 then begin
      (* Prefer invalid ways as victims. *)
      if !victim_stamp > -1 then begin
        victim := i;
        victim_stamp := -1
      end
    end
    else if t.stamps.(idx) < !victim_stamp then begin
      victim := i;
      victim_stamp := t.stamps.(idx)
    end
  done;
  if !hit_way >= 0 then begin
    t.stamps.(base + !hit_way) <- t.tick;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let idx = base + !victim in
    t.tags.(idx) <- line;
    t.stamps.(idx) <- t.tick;
    false
  end

let size_bytes t = t.sets * t.ways * t.line_bytes
let line_bytes t = t.line_bytes
let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then nan else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0;
  reset_stats t
