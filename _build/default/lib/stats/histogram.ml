type t = {
  sub_buckets : int;
  sub_shift : int; (* log2 sub_buckets *)
  counts : int array;
  n_buckets : int;
  max_value : int;
  mutable total : int;
  mutable max_recorded : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_int n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Index layout: values < sub_buckets map identity to [0, sub_buckets);
   beyond that, each power-of-two range [2^k, 2^(k+1)) splits into
   sub_buckets sub-ranges. *)
let bucket_index t v =
  if v < t.sub_buckets then v
  else begin
    let msb = log2_int v in
    let shift = msb - t.sub_shift in
    let sub = (v lsr shift) - t.sub_buckets in
    (((msb - t.sub_shift) + 1) * t.sub_buckets) + sub
  end

(* Inverse: the [lo, hi) value range covered by bucket [i]. *)
let bucket_range t i =
  if i < t.sub_buckets then (i, i + 1)
  else begin
    let tier = (i / t.sub_buckets) - 1 in
    let sub = i mod t.sub_buckets in
    let base = (t.sub_buckets + sub) lsl tier in
    let width = 1 lsl tier in
    (base, base + width)
  end

let create ?(sub_buckets = 32) ~max_value () =
  if not (is_power_of_two sub_buckets) then
    invalid_arg "Histogram.create: sub_buckets must be a power of two";
  if max_value < 1 then invalid_arg "Histogram.create: max_value must be >= 1";
  let sub_shift = log2_int sub_buckets in
  let probe =
    {
      sub_buckets;
      sub_shift;
      counts = [||];
      n_buckets = 0;
      max_value;
      total = 0;
      max_recorded = 0;
    }
  in
  let n_buckets = bucket_index probe max_value + 1 in
  { probe with counts = Array.make n_buckets 0; n_buckets }

let record_n t v ~count =
  if count < 0 then invalid_arg "Histogram.record_n: negative count";
  let v = max 0 (min v t.max_value) in
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + count;
  t.total <- t.total + count;
  if v > t.max_recorded then t.max_recorded <- v

let record t v = record_n t v ~count:1
let count t = t.total
let max_recorded t = t.max_recorded

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  if t.total = 0 then 0
  else begin
    let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let target = max 1 target in
    let acc = ref 0 and result = ref 0 and found = ref false in
    (try
       for i = 0 to t.n_buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= target then begin
           let lo, hi = bucket_range t i in
           result := min (hi - 1) (max lo 0);
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    if !found then min !result t.max_recorded else t.max_recorded
  end

let mean t =
  if t.total = 0 then nan
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.n_buckets - 1 do
      if t.counts.(i) > 0 then begin
        let lo, hi = bucket_range t i in
        let mid = (float_of_int lo +. float_of_int (hi - 1)) /. 2.0 in
        sum := !sum +. (mid *. float_of_int t.counts.(i))
      end
    done;
    !sum /. float_of_int t.total
  end

let iter_buckets t f =
  for i = 0 to t.n_buckets - 1 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_range t i in
      f ~lo ~hi ~count:t.counts.(i)
    end
  done

let fraction_above t v =
  if t.total = 0 then 0.0
  else begin
    let above = ref 0 in
    iter_buckets t (fun ~lo ~hi ~count ->
        if lo > v then above := !above + count
        else if hi - 1 > v then
          (* Bucket straddles v: apportion linearly. *)
          let width = hi - lo in
          let over = hi - 1 - v in
          above := !above + (count * over / width));
    float_of_int !above /. float_of_int t.total
  end

let clear t =
  Array.fill t.counts 0 t.n_buckets 0;
  t.total <- 0;
  t.max_recorded <- 0
