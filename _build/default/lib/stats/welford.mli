(** Welford's online mean/variance.

    Numerically stable single-pass moments for long-running monitors
    (utilization, inter-arrival gaps) where storing samples is wasteful
    and naive sum-of-squares loses precision. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** Sample variance (n-1 denominator); nan below two samples. *)
val variance : t -> float

val std_dev : t -> float
val min_value : t -> float
val max_value : t -> float

(** [merge a b] — combined statistics of two disjoint streams
    (Chan's parallel update). *)
val merge : t -> t -> t
