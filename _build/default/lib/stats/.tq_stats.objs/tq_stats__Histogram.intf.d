lib/stats/histogram.mli:
