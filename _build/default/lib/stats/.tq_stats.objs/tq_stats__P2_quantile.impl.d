lib/stats/p2_quantile.ml: Array
