lib/stats/histogram.ml: Array
