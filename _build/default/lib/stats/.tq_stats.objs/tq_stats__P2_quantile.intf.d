lib/stats/p2_quantile.mli:
