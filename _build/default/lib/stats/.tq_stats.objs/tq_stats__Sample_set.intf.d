lib/stats/sample_set.mli:
