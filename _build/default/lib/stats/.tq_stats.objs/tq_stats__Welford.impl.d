lib/stats/welford.ml: Float
