lib/stats/welford.mli:
