lib/stats/sample_set.ml: Array Float List Tq_util
