(** Log-bucketed histogram (HDR-style).

    Buckets grow geometrically: each power-of-two range is divided into
    [sub_buckets] linear sub-buckets, bounding relative quantile error by
    1/sub_buckets while using O(log range) memory.  Used where the exact
    recorder would be too large (reuse-distance profiles, long sweeps). *)

type t

(** [create ~max_value] tracks values in [0, max_value]; [sub_buckets]
    (default 32, power of two) bounds relative error. *)
val create : ?sub_buckets:int -> max_value:int -> unit -> t

val record : t -> int -> unit

(** [record_n t v ~count] records [v] [count] times. *)
val record_n : t -> int -> count:int -> unit

val count : t -> int
val max_recorded : t -> int

(** [percentile t p] returns a representative value at percentile [p]. *)
val percentile : t -> float -> int

(** [mean t] is approximated from bucket midpoints. *)
val mean : t -> float

(** [iter_buckets t f] calls [f ~lo ~hi ~count] on each non-empty bucket
    (value range inclusive-exclusive). *)
val iter_buckets : t -> (lo:int -> hi:int -> count:int -> unit) -> unit

(** [fraction_above t v] is the fraction of recorded values > [v]. *)
val fraction_above : t -> int -> float

val clear : t -> unit
