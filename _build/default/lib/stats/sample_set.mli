(** Exact sample recorder.

    Stores every sample (unboxed) and answers percentile queries exactly
    by sorting a copy on demand.  This is the ground truth used for all
    reported tail latencies; streaming estimators ({!P2_quantile},
    {!Histogram}) are validated against it in the test suite. *)

type t

val create : ?capacity:int -> unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val max_value : t -> float
val min_value : t -> float

(** [percentile t p] with [p] in [0, 100]; nan when empty.  Uses the
    nearest-rank definition so p100 is the maximum. *)
val percentile : t -> float -> float

(** [percentiles t ps] sorts once and answers many queries. *)
val percentiles : t -> float list -> float list

val std_dev : t -> float
val clear : t -> unit
val to_sorted_array : t -> float array
