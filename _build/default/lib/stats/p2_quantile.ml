type t = {
  q : float;
  heights : float array; (* marker heights, 5 markers *)
  positions : float array; (* actual marker positions (1-based) *)
  desired : float array; (* desired marker positions *)
  increments : float array;
  mutable n : int;
  initial : float array; (* first five samples *)
}

let create ~q =
  if q <= 0.0 || q >= 1.0 then invalid_arg "P2_quantile.create: q must be in (0, 1)";
  {
    q;
    heights = Array.make 5 0.0;
    positions = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
    desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
    increments = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
    n = 0;
    initial = Array.make 5 0.0;
  }

let count t = t.n

let parabolic t i d =
  let q = t.heights and pos = t.positions in
  q.(i)
  +. d
     /. (pos.(i + 1) -. pos.(i - 1))
     *. (((pos.(i) -. pos.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (pos.(i + 1) -. pos.(i)))
        +. ((pos.(i + 1) -. pos.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (pos.(i) -. pos.(i - 1))))

let sign_of d = if d > 0.0 then 1 else -1

let linear t i d =
  let q = t.heights and pos = t.positions in
  let s = sign_of d in
  q.(i) +. (d *. (q.(i + s) -. q.(i)) /. (pos.(i + s) -. pos.(i)))

let add t x =
  if t.n < 5 then begin
    t.initial.(t.n) <- x;
    t.n <- t.n + 1;
    if t.n = 5 then begin
      Array.sort compare t.initial;
      Array.blit t.initial 0 t.heights 0 5
    end
  end
  else begin
    let k =
      if x < t.heights.(0) then begin
        t.heights.(0) <- x;
        0
      end
      else if x >= t.heights.(4) then begin
        t.heights.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < t.heights.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      t.positions.(i) <- t.positions.(i) +. 1.0
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    for i = 1 to 3 do
      let d = t.desired.(i) -. t.positions.(i) in
      if
        (d >= 1.0 && t.positions.(i + 1) -. t.positions.(i) > 1.0)
        || (d <= -1.0 && t.positions.(i - 1) -. t.positions.(i) < -1.0)
      then begin
        let d = if d >= 0.0 then 1.0 else -1.0 in
        let candidate = parabolic t i d in
        let candidate =
          if t.heights.(i - 1) < candidate && candidate < t.heights.(i + 1) then candidate
          else linear t i d
        in
        t.heights.(i) <- candidate;
        t.positions.(i) <- t.positions.(i) +. d
      end
    done;
    t.n <- t.n + 1
  end

let estimate t =
  if t.n = 0 then nan
  else if t.n < 5 then begin
    let sorted = Array.sub t.initial 0 t.n in
    Array.sort compare sorted;
    let idx = int_of_float (ceil (t.q *. float_of_int t.n)) - 1 in
    sorted.(max 0 (min (t.n - 1) idx))
  end
  else t.heights.(2)
