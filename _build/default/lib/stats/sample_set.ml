module Fvec = Tq_util.Fvec

type t = { samples : Fvec.t }

let create ?(capacity = 1024) () = { samples = Fvec.create ~capacity () }
let add t x = Fvec.push t.samples x
let count t = Fvec.length t.samples
let mean t = Fvec.mean t.samples

let max_value t =
  if count t = 0 then nan else Fvec.fold Float.max neg_infinity t.samples

let min_value t =
  if count t = 0 then nan else Fvec.fold Float.min infinity t.samples

let rank_of_percentile n p =
  (* Nearest-rank: smallest k with k/n >= p/100, clamped to [0, n-1]. *)
  let k = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
  max 0 (min (n - 1) k)

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then nan else sorted.(rank_of_percentile n p)

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Sample_set.percentile: p out of range";
  percentile_of_sorted (Fvec.sorted_copy t.samples) p

let percentiles t ps =
  let sorted = Fvec.sorted_copy t.samples in
  List.map (percentile_of_sorted sorted) ps

let std_dev t =
  let n = count t in
  if n < 2 then nan
  else begin
    let m = mean t in
    let ss = Fvec.fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t.samples in
    sqrt (ss /. float_of_int (n - 1))
  end

let clear t = Fvec.clear t.samples
let to_sorted_array t = Fvec.sorted_copy t.samples
