(** P-square (P2) streaming quantile estimator (Jain & Chlamtac 1985).

    Estimates a single quantile in O(1) memory without storing samples.
    Used by long-running monitors (e.g. the dispatcher-capacity probe)
    where exact recording would be wasteful. *)

type t

(** [create ~q] estimates quantile [q] in (0, 1). *)
val create : q:float -> t

val add : t -> float -> unit
val count : t -> int

(** [estimate t] is the current quantile estimate; exact while fewer than
    five samples have been seen; nan when empty. *)
val estimate : t -> float
