(** Aligned plain-text tables for the benchmark harness output.

    Every reproduced paper table/figure prints through this module so the
    harness output has one consistent format. *)

type t

(** [create ~title ~columns] starts a table with the given header row. *)
val create : title:string -> columns:string list -> t

(** [add_row t cells] appends a data row; arity must match the header. *)
val add_row : t -> string list -> unit

(** [cell_f v] formats a float with sensible precision. *)
val cell_f : float -> string

(** [cell_i v] formats an int with thousands separators. *)
val cell_i : int -> string

(** [render t] returns the table as a string with aligned columns. *)
val render : t -> string

(** Accessors used by {!Ascii_chart.plot_table}. *)

val title : t -> string
val header : t -> string list

(** Data rows in insertion order. *)
val data_rows : t -> string list list

(** [print t] renders to stdout followed by a blank line. *)
val print : t -> unit
