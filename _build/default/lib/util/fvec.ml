type t = { mutable data : float array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0.0; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0.0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check_bounds t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec: index out of bounds"

let get t i =
  check_bounds t i;
  t.data.(i)

let set t i x =
  check_bounds t i;
  t.data.(i) <- x

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len

let sorted_copy t =
  let a = to_array t in
  Array.sort compare a;
  a

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let mean t =
  if t.len = 0 then nan else fold ( +. ) 0.0 t /. float_of_int t.len
