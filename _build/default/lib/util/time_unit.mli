(** Time and cycle units.

    All simulator timestamps are integer nanoseconds, which keeps event
    ordering exact and covers about 292 years in a 63-bit int.  Cycle
    counts convert through an explicit clock frequency (the paper's
    testbed runs at 2.1 GHz). *)

(** Nanoseconds per microsecond / millisecond / second. *)
val ns_per_us : int

val ns_per_ms : int
val ns_per_s : int

(** [us f] converts microseconds (float) to integer nanoseconds. *)
val us : float -> int

(** [ms f] converts milliseconds to nanoseconds. *)
val ms : float -> int

(** [s f] converts seconds to nanoseconds. *)
val s : float -> int

(** [to_us ns] converts nanoseconds to microseconds as float. *)
val to_us : int -> float

(** [to_s ns] converts nanoseconds to seconds as float. *)
val to_s : int -> float

(** Default simulated core frequency, GHz (paper: 2.1 GHz Xeon 8176). *)
val default_ghz : float

(** [cycles_to_ns ~ghz c] rounds cycle count [c] to nanoseconds. *)
val cycles_to_ns : ?ghz:float -> int -> int

(** [ns_to_cycles ~ghz ns] rounds nanoseconds to cycles. *)
val ns_to_cycles : ?ghz:float -> int -> int

(** [pp_ns fmt ns] prints a human-readable duration, e.g. "12.3us". *)
val pp_ns : Format.formatter -> int -> unit
