(** Double-ended queue on a growable circular buffer.

    Worker run queues push yielded jobs at the tail and resume from the
    head (processor sharing); work stealing (the Caladan model) takes
    from the tail of a victim's queue.  All operations are amortized
    O(1). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

(** [pop_front t] / [pop_back t] return [None] when empty. *)
val pop_front : 'a t -> 'a option

val pop_back : 'a t -> 'a option

(** [peek_front t] observes without removing. *)
val peek_front : 'a t -> 'a option

(** [get t i] is the i-th element from the front. *)
val get : 'a t -> int -> 'a

val iter : ('a -> unit) -> 'a t -> unit
val clear : 'a t -> unit
val to_list : 'a t -> 'a list
