(** Terminal line charts.

    Renders the reproduced figures as curves so the benchmark output
    shows the *shape* the paper plots — crossovers and knees are visible
    at a glance instead of buried in table cells. *)

type series = { label : string; points : (float * float) list }

(** [render ~title series] draws all series on one canvas.

    - [log_y] plots log10(y) (latencies spanning decades); non-positive
      values are dropped.
    - NaN points are dropped; series left empty are skipped.
    - Returns "" when nothing is plottable. *)
val render :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string

(** [plot_table ?log_y table] — interpret column 0 of a {!Text_table} as
    the x axis and every other column as a series, parsing numbers
    leniently ("0.50", "75%", "16KB", "2us", "-" = skip).  Returns ""
    when fewer than two rows parse. *)
val plot_table : ?log_y:bool -> Text_table.t -> string
