(** Fenwick (binary indexed) tree over integer counts.

    Used by the exact reuse-distance analyzer: maintaining one bit per
    "last occurrence" position makes the number of distinct addresses
    between two accesses a prefix-sum query, giving an O(n log n)
    algorithm overall. *)

type t

(** [create n] builds a tree over positions [0, n). *)
val create : int -> t

val size : t -> int

(** [add t i delta] adds [delta] at position [i]. *)
val add : t -> int -> int -> unit

(** [prefix_sum t i] sums positions [0, i] inclusive; [-1] yields 0. *)
val prefix_sum : t -> int -> int

(** [range_sum t ~lo ~hi] sums the inclusive range; empty ranges yield 0. *)
val range_sum : t -> lo:int -> hi:int -> int

val total : t -> int
