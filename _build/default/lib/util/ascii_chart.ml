type series = { label : string; points : (float * float) list }

let symbols = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '$'; '~' |]

let finite_points log_y points =
  List.filter_map
    (fun (x, y) ->
      if Float.is_nan x || Float.is_nan y then None
      else if log_y then if y > 0.0 then Some (x, log10 y) else None
      else Some (x, y))
    points

let render ?(width = 64) ?(height = 16) ?(log_y = false) ?(x_label = "") ?(y_label = "")
    ~title series =
  let prepared =
    List.filteri (fun i _ -> i < Array.length symbols) series
    |> List.map (fun s -> { s with points = finite_points log_y s.points })
    |> List.filter (fun s -> s.points <> [])
  in
  let all_points = List.concat_map (fun s -> s.points) prepared in
  if List.length all_points < 2 then ""
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x_min = List.fold_left Float.min (List.hd xs) xs in
    let x_max = List.fold_left Float.max (List.hd xs) xs in
    let y_min = List.fold_left Float.min (List.hd ys) ys in
    let y_max = List.fold_left Float.max (List.hd ys) ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let canvas = Array.make_matrix height width ' ' in
    let place x y c =
      let col =
        int_of_float (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
      in
      let row =
        height - 1
        - int_of_float (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
      in
      if row >= 0 && row < height && col >= 0 && col < width then
        canvas.(row).(col) <- (if canvas.(row).(col) = ' ' then c else '?')
      (* '?' marks collisions of different series *)
    in
    List.iteri
      (fun i s -> List.iter (fun (x, y) -> place x y symbols.(i)) s.points)
      prepared;
    let buf = Buffer.create (width * height * 2) in
    Buffer.add_string buf (".. " ^ title ^ (if log_y then " [log y]" else "") ^ "\n");
    let unlog v = if log_y then 10.0 ** v else v in
    let y_tick v = Printf.sprintf "%10.4g" (unlog v) in
    for row = 0 to height - 1 do
      let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
      let label =
        if row = 0 || row = height - 1 || row = height / 2 then
          y_tick (y_min +. (frac *. y_span))
        else String.make 10 ' '
      in
      Buffer.add_string buf label;
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.init width (fun c -> canvas.(row).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%11s %-10.4g%*s%10.4g %s\n" "" x_min (width - 18) "" x_max x_label);
    (match y_label with "" -> () | l -> Buffer.add_string buf ("  y: " ^ l ^ "\n"));
    List.iteri
      (fun i s ->
        Buffer.add_string buf (Printf.sprintf "  %c %s\n" symbols.(i) s.label))
      prepared;
    Buffer.contents buf
  end

(* Lenient numeric parsing of table cells: strip %, unit suffixes and
   thousands separators. *)
let parse_cell cell =
  let cleaned =
    String.to_seq cell
    |> Seq.filter (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = 'e')
    |> String.of_seq
  in
  if cleaned = "" || cleaned = "-" then None else float_of_string_opt cleaned

let plot_table ?(log_y = true) table =
  match Text_table.header table with
  | [] | [ _ ] -> ""
  | x_name :: series_names ->
      let rows = Text_table.data_rows table in
      let parsed =
        List.filter_map
          (fun row ->
            match row with
            | x_cell :: cells -> (
                match parse_cell x_cell with
                | Some x -> Some (x, List.map parse_cell cells)
                | None -> None)
            | [] -> None)
          rows
      in
      if List.length parsed < 2 then ""
      else begin
        let series =
          List.mapi
            (fun i label ->
              {
                label;
                points =
                  List.filter_map
                    (fun (x, cells) ->
                      match List.nth_opt cells i with
                      | Some (Some y) -> Some (x, y)
                      | _ -> None)
                    parsed;
              })
            series_names
        in
        render ~log_y ~x_label:x_name ~title:(Text_table.title table) series
      end
