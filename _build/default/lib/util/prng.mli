(** Deterministic pseudo-random number generation.

    The simulator must be reproducible: every stochastic component takes an
    explicit generator, never global state.  The implementation is
    xoshiro256** seeded through splitmix64, which is fast, has a 2^256 - 1
    period and passes BigCrush; [split] derives statistically independent
    streams so concurrent model components do not share a sequence. *)

type t

(** [create ~seed] builds a generator from a 64-bit seed. *)
val create : seed:int64 -> t

(** [split t] derives a fresh generator whose stream is independent of
    subsequent draws from [t]. *)
val split : t -> t

(** [copy t] duplicates the full generator state. *)
val copy : t -> t

(** [bits64 t] returns 64 uniformly distributed bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform over [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform over the inclusive range. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform over [0, bound). *)
val float : t -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t ~p] is true with probability [p]. *)
val bernoulli : t -> p:float -> bool

(** [exponential t ~mean] samples Exp with the given mean. *)
val exponential : t -> mean:float -> float

(** [lognormal t ~mu ~sigma] samples exp(N(mu, sigma^2)). *)
val lognormal : t -> mu:float -> sigma:float -> float

(** [gaussian t] samples a standard normal via Box-Muller. *)
val gaussian : t -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose_weighted t weights] returns an index sampled proportionally to
    [weights]; weights must be non-negative with a positive sum. *)
val choose_weighted : t -> float array -> int
