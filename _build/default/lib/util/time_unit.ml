let ns_per_us = 1_000
let ns_per_ms = 1_000_000
let ns_per_s = 1_000_000_000
let us f = int_of_float (Float.round (f *. float_of_int ns_per_us))
let ms f = int_of_float (Float.round (f *. float_of_int ns_per_ms))
let s f = int_of_float (Float.round (f *. float_of_int ns_per_s))
let to_us ns = float_of_int ns /. float_of_int ns_per_us
let to_s ns = float_of_int ns /. float_of_int ns_per_s
let default_ghz = 2.1

let cycles_to_ns ?(ghz = default_ghz) c =
  int_of_float (Float.round (float_of_int c /. ghz))

let ns_to_cycles ?(ghz = default_ghz) ns =
  int_of_float (Float.round (float_of_int ns *. ghz))

let pp_ns fmt ns =
  let f = float_of_int ns in
  if ns < 1_000 then Format.fprintf fmt "%dns" ns
  else if ns < ns_per_ms then Format.fprintf fmt "%.1fus" (f /. 1e3)
  else if ns < ns_per_s then Format.fprintf fmt "%.2fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)
