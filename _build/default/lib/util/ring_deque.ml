type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of front element *)
  mutable len : int;
}

let create ?(capacity = 8) () =
  { data = Array.make (max capacity 1) None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let index t i = (t.head + i) mod Array.length t.data

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    data.(i) <- t.data.(index t i)
  done;
  t.data <- data;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.data then grow t;
  t.data.(index t t.len) <- Some x;
  t.len <- t.len + 1

let push_front t x =
  if t.len = Array.length t.data then grow t;
  let cap = Array.length t.data in
  t.head <- (t.head + cap - 1) mod cap;
  t.data.(t.head) <- Some x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.data.(t.head) in
    t.data.(t.head) <- None;
    t.head <- index t 1;
    t.len <- t.len - 1;
    x
  end

let pop_back t =
  if t.len = 0 then None
  else begin
    let i = index t (t.len - 1) in
    let x = t.data.(i) in
    t.data.(i) <- None;
    t.len <- t.len - 1;
    x
  end

let peek_front t = if t.len = 0 then None else t.data.(t.head)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring_deque.get: index out of bounds";
  match t.data.(index t i) with
  | Some x -> x
  | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.len <- 0

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (get t i :: acc) in
  build (t.len - 1) []
