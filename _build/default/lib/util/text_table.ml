type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Text_table.add_row: arity mismatch";
  t.rows <- cells :: t.rows

let cell_f v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let cell_i v =
  let s = string_of_int (abs v) in
  let n = String.length s in
  let buf = Buffer.create (n + (n / 3)) in
  if v < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let title t = t.title
let header t = t.columns
let data_rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad i c = c ^ String.make (widths.(i) - String.length c) ' ' in
  let emit row =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
