type t = { tree : int array; n : int }

let create n =
  if n < 0 then invalid_arg "Fenwick.create: negative size";
  { tree = Array.make (n + 1) 0; n }

let size t = t.n

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.add: index out of bounds";
  let i = ref (i + 1) in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let prefix_sum t i =
  let i = ref (min i (t.n - 1) + 1) in
  let acc = ref 0 in
  while !i > 0 do
    acc := !acc + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let range_sum t ~lo ~hi = if hi < lo then 0 else prefix_sum t hi - prefix_sum t (lo - 1)
let total t = prefix_sum t (t.n - 1)
