lib/util/ring_deque.ml: Array
