lib/util/ivec.ml: Array
