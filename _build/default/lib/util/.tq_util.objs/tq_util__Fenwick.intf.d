lib/util/fenwick.mli:
