lib/util/binary_heap.ml: Array
