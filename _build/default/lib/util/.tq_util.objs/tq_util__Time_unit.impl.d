lib/util/time_unit.ml: Float Format
