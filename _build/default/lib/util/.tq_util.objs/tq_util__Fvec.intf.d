lib/util/fvec.mli:
