lib/util/fvec.ml: Array
