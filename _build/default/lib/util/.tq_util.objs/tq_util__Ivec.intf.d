lib/util/ivec.mli:
