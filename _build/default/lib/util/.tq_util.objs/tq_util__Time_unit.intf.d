lib/util/time_unit.mli: Format
