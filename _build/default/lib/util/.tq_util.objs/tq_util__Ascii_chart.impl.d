lib/util/ascii_chart.ml: Array Buffer Float List Printf Seq String Text_table
