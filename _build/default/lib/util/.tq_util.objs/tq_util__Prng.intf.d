lib/util/prng.mli:
