lib/util/ascii_chart.mli: Text_table
