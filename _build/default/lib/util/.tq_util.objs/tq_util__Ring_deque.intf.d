lib/util/ring_deque.mli:
