type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: expands a 64-bit seed into the 256-bit xoshiro state. *)
let splitmix64_next state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let create ~seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits64 t =
  let result = rotl (t.s1 *% 5L) 7 *% 9L in
  let u = Int64.shift_left t.s1 17 in
  t.s2 <- t.s2 ^% t.s0;
  t.s3 <- t.s3 ^% t.s1;
  t.s1 <- t.s1 ^% t.s2;
  t.s0 <- t.s0 ^% t.s3;
  t.s2 <- t.s2 ^% u;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)

(* Non-negative 62-bit value: safe to convert to OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_bound = bound - 1 in
  if bound land mask_bound = 0 then bits62 t land mask_bound
  else
    let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
    let rec draw () =
      let v = bits62 t in
      if v < limit then v mod bound else draw ()
    in
    draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits -> [0, 1), scaled. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  let rec positive_uniform () =
    let u = float t 1.0 in
    if u > 0.0 then u else positive_uniform ()
  in
  -.mean *. log (positive_uniform ())

let gaussian t =
  let rec positive_uniform () =
    let u = float t 1.0 in
    if u > 0.0 then u else positive_uniform ()
  in
  let u1 = positive_uniform () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose_weighted t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Prng.choose_weighted: weights must sum to > 0";
  let target = float t total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
