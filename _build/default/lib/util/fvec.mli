(** Growable float arrays.

    Latency recorders accumulate millions of samples; a resizable flat
    float array avoids boxing and list overhead. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float
val set : t -> int -> float -> unit
val clear : t -> unit

(** [to_array t] copies the live prefix into a fresh array. *)
val to_array : t -> float array

(** [sorted_copy t] returns the samples sorted ascending. *)
val sorted_copy : t -> float array

val iter : (float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val mean : t -> float
