(** Growable int arrays (unboxed), mirror of {!Fvec}. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val clear : t -> unit
val to_array : t -> int array
val sorted_copy : t -> int array
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
