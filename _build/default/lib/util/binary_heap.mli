(** Array-backed binary min-heap, parameterized by an integer priority.

    The simulator's event queue is the hottest structure in every
    experiment; keys are kept unboxed in a flat int array alongside the
    payload array, and ties are broken by insertion sequence so that
    same-timestamp events run in FIFO order (a determinism requirement). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push t ~key v] inserts [v] with priority [key]. *)
val push : 'a t -> key:int -> 'a -> unit

(** [min_key t] is the smallest key, or [None] when empty. *)
val min_key : 'a t -> int option

(** [pop t] removes and returns the minimum-key element (FIFO among
    equal keys).  Raises [Invalid_argument] when empty. *)
val pop : 'a t -> int * 'a

val clear : 'a t -> unit
