type 'a t = {
  mutable keys : int array; (* primary priority *)
  mutable seqs : int array; (* tie-break: insertion order *)
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ?(capacity = 64) ~dummy () =
  let capacity = max capacity 1 in
  {
    keys = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = Array.make capacity dummy;
    len = 0;
    next_seq = 0;
    dummy;
  }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) 0 in
  let seqs = Array.make (2 * cap) 0 in
  let vals = Array.make (2 * cap) t.dummy in
  Array.blit t.keys 0 keys 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.vals 0 vals 0 t.len;
  t.keys <- keys;
  t.seqs <- seqs;
  t.vals <- vals

(* (key, seq) lexicographic order *)
let less t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let k = t.keys.(i) and s = t.seqs.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.seqs.(j) <- s;
  t.vals.(j) <- v

let push t ~key v =
  if t.len = Array.length t.keys then grow t;
  let i = ref t.len in
  t.keys.(!i) <- key;
  t.seqs.(!i) <- t.next_seq;
  t.vals.(!i) <- v;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t !i parent then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done

let min_key t = if t.len = 0 then None else Some t.keys.(0)

let pop t =
  if t.len = 0 then invalid_arg "Binary_heap.pop: empty heap";
  let key = t.keys.(0) and v = t.vals.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.keys.(0) <- t.keys.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.vals.(0) <- t.vals.(t.len)
  end;
  t.vals.(t.len) <- t.dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t l !smallest then smallest := l;
    if r < t.len && less t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done;
  (key, v)

let clear t =
  Array.fill t.vals 0 t.len t.dummy;
  t.len <- 0
