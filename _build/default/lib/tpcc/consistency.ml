let check db =
  let sc = Schema.scale db in
  let violations = ref [] in
  let fail fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  (* C1: warehouse YTD equals the sum of its districts' YTD. *)
  for w = 0 to sc.warehouses - 1 do
    let warehouse = Schema.warehouse db ~w in
    let district_sum = ref 0 in
    for d = 0 to sc.districts_per_warehouse - 1 do
      district_sum := !district_sum + (Schema.district db ~w ~d).d_ytd
    done;
    if warehouse.w_ytd <> !district_sum then
      fail "warehouse %d: w_ytd %d <> sum of district ytd %d" w warehouse.w_ytd !district_sum
  done;
  (* C2/C3: order ids are dense below d_next_o_id, and every order's
     line count matches o_ol_cnt. *)
  for w = 0 to sc.warehouses - 1 do
    for d = 0 to sc.districts_per_warehouse - 1 do
      let next = (Schema.district db ~w ~d).d_next_o_id in
      for o = 1 to next - 1 do
        match Schema.order db ~w ~d ~o with
        | None -> fail "district (%d,%d): missing order %d < next_o_id %d" w d o next
        | Some order ->
            let lines = ref 0 in
            let delivered_lines = ref 0 in
            for ol = 0 to order.o_ol_cnt - 1 do
              match Schema.order_line db ~w ~d ~o ~ol with
              | Some line ->
                  incr lines;
                  if line.ol_delivered then incr delivered_lines
              | None -> ()
            done;
            if !lines <> order.o_ol_cnt then
              fail "order (%d,%d,%d): %d lines, expected %d" w d o !lines order.o_ol_cnt;
            (* C4: delivery is atomic per order. *)
            (match order.o_carrier_id with
            | Some _ when !delivered_lines <> order.o_ol_cnt ->
                fail "order (%d,%d,%d): delivered order with undelivered lines" w d o
            | None when !delivered_lines <> 0 ->
                fail "order (%d,%d,%d): undelivered order with delivered lines" w d o
            | _ -> ())
      done
    done
  done;
  (* C5: every queued new-order entry is an existing undelivered order. *)
  (* Pop/push to inspect without destroying state. *)
  for w = 0 to sc.warehouses - 1 do
    for d = 0 to sc.districts_per_warehouse - 1 do
      let depth = Schema.new_order_depth db ~w ~d in
      for _ = 1 to depth do
        match Schema.pop_new_order db ~w ~d with
        | None -> fail "district (%d,%d): queue depth lied" w d
        | Some o ->
            (match Schema.order db ~w ~d ~o with
            | None -> fail "district (%d,%d): queued order %d does not exist" w d o
            | Some order ->
                if order.o_carrier_id <> None then
                  fail "district (%d,%d): queued order %d already delivered" w d o);
            Schema.push_new_order db ~w ~d ~o
      done
    done
  done;
  (* C6: stock quantities are non-negative (replenishment rule). *)
  for w = 0 to sc.warehouses - 1 do
    for i = 0 to sc.items - 1 do
      if (Schema.stock db ~w ~i).s_quantity < 0 then
        fail "stock (%d,%d): negative quantity" w i
    done
  done;
  List.rev !violations

let check_exn db =
  match check db with
  | [] -> ()
  | violations -> failwith ("TPC-C consistency violated:\n" ^ String.concat "\n" violations)
