module Prng = Tq_util.Prng

let nurand rng ~a ~x ~y ~c =
  if x > y || a < 0 then invalid_arg "Nurand.nurand";
  let r1 = Prng.int_in_range rng ~lo:0 ~hi:a in
  let r2 = Prng.int_in_range rng ~lo:x ~hi:y in
  (((r1 lor r2) + c) mod (y - x + 1)) + x

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name n =
  if n < 0 || n > 999 then invalid_arg "Nurand.last_name: n in [0, 999]";
  syllables.(n / 100) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)

let customer_last_name rng ~customers ~c =
  if customers <= 0 then invalid_arg "Nurand.customer_last_name";
  (* Loaded customers carry name (id mod 1000); with fewer than 1000
     rows, restrict the draw so the name always exists. *)
  let bound = min 999 (customers - 1) in
  last_name (nurand rng ~a:255 ~x:0 ~y:bound ~c)
