module Prng = Tq_util.Prng

type kind = Payment | Order_status | New_order | Delivery | Stock_level

let kind_name = function
  | Payment -> "Payment"
  | Order_status -> "OrderStatus"
  | New_order -> "NewOrder"
  | Delivery -> "Delivery"
  | Stock_level -> "StockLevel"

let sample_kind rng =
  match Prng.choose_weighted rng [| 0.44; 0.04; 0.44; 0.04; 0.04 |] with
  | 0 -> Payment
  | 1 -> Order_status
  | 2 -> New_order
  | 3 -> Delivery
  | _ -> Stock_level

let service_time_ns kind =
  let us = Tq_util.Time_unit.us in
  match kind with
  | Payment -> us 5.7
  | Order_status -> us 6.0
  | New_order -> us 20.0
  | Delivery -> us 88.0
  | Stock_level -> us 100.0

type outcome =
  | Ordered of { o_id : int; total : int }
  | Paid of { amount : int }
  | Status of { last_order : int option; undelivered_lines : int }
  | Delivered of { orders : int }
  | Stock_low of { count : int }

let pick_warehouse db rng = Prng.int rng (Schema.scale db).warehouses
let pick_district db rng = Prng.int rng (Schema.scale db).districts_per_warehouse

(* Spec: customers by NURand(1023)-style skew (scaled to our row count),
   items by NURand(8191)-style skew. *)
let pick_customer db rng =
  let n = (Schema.scale db).customers_per_district in
  Nurand.nurand rng ~a:1023 ~x:0 ~y:(n - 1) ~c:259 mod n

let pick_item db rng =
  let n = (Schema.scale db).items in
  Nurand.nurand rng ~a:8191 ~x:0 ~y:(n - 1) ~c:7911 mod n

(* Spec: 60% of Payment/Order-Status select the customer by last name,
   taking the ceiling-median of the matching rows. *)
let pick_customer_for_lookup db rng ~w ~d =
  if Prng.bernoulli rng ~p:0.6 then begin
    let n = (Schema.scale db).customers_per_district in
    let name = Nurand.customer_last_name rng ~customers:n ~c:223 in
    match Schema.customers_by_last_name db ~w ~d name with
    | [] -> pick_customer db rng
    | matches -> List.nth matches (List.length matches / 2)
  end
  else pick_customer db rng

let new_order db rng ~now_ns =
  let w = pick_warehouse db rng and d = pick_district db rng in
  let c = pick_customer db rng in
  let district = Schema.district db ~w ~d in
  let o_id = district.d_next_o_id in
  district.d_next_o_id <- o_id + 1;
  let ol_cnt = 5 + Prng.int rng 11 in
  Schema.insert_order db ~w ~d ~o:o_id
    { o_c_id = c; o_entry_ns = now_ns; o_carrier_id = None; o_ol_cnt = ol_cnt };
  let total = ref 0 in
  for ol = 0 to ol_cnt - 1 do
    let i = pick_item db rng in
    let quantity = 1 + Prng.int rng 10 in
    let item = Schema.item db ~i in
    let stock = Schema.stock db ~w ~i in
    (* TPC-C replenishment rule: restock by 91 when running low. *)
    if stock.s_quantity - quantity < 10 then stock.s_quantity <- stock.s_quantity + 91;
    stock.s_quantity <- stock.s_quantity - quantity;
    stock.s_ytd <- stock.s_ytd + quantity;
    stock.s_order_cnt <- stock.s_order_cnt + 1;
    let amount = quantity * item.i_price in
    total := !total + amount;
    Schema.insert_order_line db ~w ~d ~o:o_id ~ol
      { ol_i_id = i; ol_quantity = quantity; ol_amount = amount; ol_delivered = false }
  done;
  Schema.push_new_order db ~w ~d ~o:o_id;
  Ordered { o_id; total = !total }

let payment db rng =
  let w = pick_warehouse db rng and d = pick_district db rng in
  let c = pick_customer_for_lookup db rng ~w ~d in
  let amount = 100 + Prng.int rng 500_000 in
  let warehouse = Schema.warehouse db ~w in
  let district = Schema.district db ~w ~d in
  let customer = Schema.customer db ~w ~d ~c in
  warehouse.w_ytd <- warehouse.w_ytd + amount;
  district.d_ytd <- district.d_ytd + amount;
  customer.c_balance <- customer.c_balance - amount;
  customer.c_ytd_payment <- customer.c_ytd_payment + amount;
  customer.c_payment_cnt <- customer.c_payment_cnt + 1;
  Paid { amount }

let order_status db rng =
  let w = pick_warehouse db rng and d = pick_district db rng in
  let c = pick_customer_for_lookup db rng ~w ~d in
  match Schema.last_order_id db ~w ~d ~c with
  | None -> Status { last_order = None; undelivered_lines = 0 }
  | Some o_id ->
      let order = Option.get (Schema.order db ~w ~d ~o:o_id) in
      let undelivered = ref 0 in
      for ol = 0 to order.o_ol_cnt - 1 do
        match Schema.order_line db ~w ~d ~o:o_id ~ol with
        | Some line when not line.ol_delivered -> incr undelivered
        | _ -> ()
      done;
      Status { last_order = Some o_id; undelivered_lines = !undelivered }

let delivery db rng =
  (* Deliver the oldest undelivered order of every district of one
     warehouse, as the TPC-C deferred-delivery batch does. *)
  let w = pick_warehouse db rng in
  let carrier = 1 + Prng.int rng 10 in
  let delivered = ref 0 in
  for d = 0 to (Schema.scale db).districts_per_warehouse - 1 do
    match Schema.pop_new_order db ~w ~d with
    | None -> ()
    | Some o_id ->
        let order = Option.get (Schema.order db ~w ~d ~o:o_id) in
        order.o_carrier_id <- Some carrier;
        let total = ref 0 in
        for ol = 0 to order.o_ol_cnt - 1 do
          match Schema.order_line db ~w ~d ~o:o_id ~ol with
          | Some line ->
              line.ol_delivered <- true;
              total := !total + line.ol_amount
          | None -> ()
        done;
        let customer = Schema.customer db ~w ~d ~c:order.o_c_id in
        customer.c_balance <- customer.c_balance + !total;
        customer.c_delivery_cnt <- customer.c_delivery_cnt + 1;
        incr delivered
  done;
  Delivered { orders = !delivered }

let stock_level db rng =
  (* Count items with stock below a threshold among the last 20 orders
     of a district. *)
  let w = pick_warehouse db rng and d = pick_district db rng in
  let threshold = 10 + Prng.int rng 11 in
  let district = Schema.district db ~w ~d in
  let next = district.d_next_o_id in
  let seen = Hashtbl.create 64 in
  let low = ref 0 in
  for o = max 1 (next - 20) to next - 1 do
    match Schema.order db ~w ~d ~o with
    | None -> ()
    | Some order ->
        for ol = 0 to order.o_ol_cnt - 1 do
          match Schema.order_line db ~w ~d ~o ~ol with
          | Some line when not (Hashtbl.mem seen line.ol_i_id) ->
              Hashtbl.replace seen line.ol_i_id ();
              if (Schema.stock db ~w ~i:line.ol_i_id).s_quantity < threshold then incr low
          | _ -> ()
        done
  done;
  Stock_low { count = !low }

let run db rng kind ~now_ns =
  match kind with
  | New_order -> new_order db rng ~now_ns
  | Payment -> payment db rng
  | Order_status -> order_status db rng
  | Delivery -> delivery db rng
  | Stock_level -> stock_level db rng
