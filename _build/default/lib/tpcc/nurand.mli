(** TPC-C's non-uniform random distribution and last-name generation.

    NURand(A, x, y) = (((rand(0,A) | rand(x,y)) + C) mod (y-x+1)) + x —
    the spec's skewed selector for customers and items, which makes some
    rows far hotter than others.  Last names are built from the spec's
    ten syllables indexed by the digits of a three-digit number. *)

(** [nurand rng ~a ~x ~y ~c] — the spec's formula; result in [x, y]. *)
val nurand : Tq_util.Prng.t -> a:int -> x:int -> y:int -> c:int -> int

(** [last_name n] — syllable name for [n] in [0, 999], e.g.
    [last_name 371] = "PRICALLYOUGHT". *)
val last_name : int -> string

(** [customer_last_name rng ~customers ~c] — a last name drawn with the
    spec's NURand(255) skew, restricted to names that exist when only
    [customers] rows were loaded (ids map to names via [id mod 1000]). *)
val customer_last_name : Tq_util.Prng.t -> customers:int -> c:int -> string
