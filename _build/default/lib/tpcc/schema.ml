module Prng = Tq_util.Prng

type warehouse = { mutable w_ytd : int }
type district = { mutable d_next_o_id : int; mutable d_ytd : int }

type customer = {
  c_last : string;
  mutable c_balance : int;
  mutable c_ytd_payment : int;
  mutable c_payment_cnt : int;
  mutable c_delivery_cnt : int;
}

type item = { i_price : int }
type stock = { mutable s_quantity : int; mutable s_ytd : int; mutable s_order_cnt : int }

type order = {
  o_c_id : int;
  o_entry_ns : int;
  mutable o_carrier_id : int option;
  o_ol_cnt : int;
}

type order_line = {
  ol_i_id : int;
  ol_quantity : int;
  ol_amount : int;
  mutable ol_delivered : bool;
}

type scale = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
}

let default_scale =
  { warehouses = 2; districts_per_warehouse = 10; customers_per_district = 100; items = 1000 }

type t = {
  sc : scale;
  warehouses_tbl : warehouse array;
  districts_tbl : district array;  (** w * D + d *)
  customers_tbl : customer array;  (** (w * D + d) * C + c *)
  items_tbl : item array;
  stocks_tbl : stock array;  (** w * items + i *)
  orders_tbl : (int * int * int, order) Hashtbl.t;
  order_lines_tbl : (int * int * int * int, order_line) Hashtbl.t;
  new_orders : int Tq_util.Ring_deque.t array;  (** per district *)
  last_order : (int * int * int, int) Hashtbl.t;  (** (w,d,c) -> o *)
}

let create ?(seed = 77L) ?(scale = default_scale) () =
  let rng = Prng.create ~seed in
  let sc = scale in
  let n_districts = sc.warehouses * sc.districts_per_warehouse in
  {
    sc;
    warehouses_tbl = Array.init sc.warehouses (fun _ -> { w_ytd = 0 });
    districts_tbl = Array.init n_districts (fun _ -> { d_next_o_id = 1; d_ytd = 0 });
    customers_tbl =
      Array.init (n_districts * sc.customers_per_district) (fun idx ->
          let c = idx mod sc.customers_per_district in
          {
            c_last = Nurand.last_name (c mod 1000);
            c_balance = 0;
            c_ytd_payment = 0;
            c_payment_cnt = 0;
            c_delivery_cnt = 0;
          });
    items_tbl =
      Array.init sc.items (fun _ -> { i_price = 100 + Prng.int rng 9_901 });
    stocks_tbl =
      Array.init (sc.warehouses * sc.items) (fun _ ->
          { s_quantity = 10 + Prng.int rng 91; s_ytd = 0; s_order_cnt = 0 });
    orders_tbl = Hashtbl.create 4096;
    order_lines_tbl = Hashtbl.create 16_384;
    new_orders = Array.init n_districts (fun _ -> Tq_util.Ring_deque.create ());
    last_order = Hashtbl.create 1024;
  }

let scale t = t.sc

let check cond = if not cond then raise Not_found

let warehouse t ~w =
  check (w >= 0 && w < t.sc.warehouses);
  t.warehouses_tbl.(w)

let district_index t ~w ~d =
  check (w >= 0 && w < t.sc.warehouses && d >= 0 && d < t.sc.districts_per_warehouse);
  (w * t.sc.districts_per_warehouse) + d

let district t ~w ~d = t.districts_tbl.(district_index t ~w ~d)

let customer t ~w ~d ~c =
  check (c >= 0 && c < t.sc.customers_per_district);
  t.customers_tbl.((district_index t ~w ~d * t.sc.customers_per_district) + c)

let customers_by_last_name t ~w ~d name =
  let base = district_index t ~w ~d * t.sc.customers_per_district in
  let matches = ref [] in
  for c = t.sc.customers_per_district - 1 downto 0 do
    if t.customers_tbl.(base + c).c_last = name then matches := c :: !matches
  done;
  !matches

let item t ~i =
  check (i >= 0 && i < t.sc.items);
  t.items_tbl.(i)

let stock t ~w ~i =
  check (w >= 0 && w < t.sc.warehouses && i >= 0 && i < t.sc.items);
  t.stocks_tbl.((w * t.sc.items) + i)

let insert_order t ~w ~d ~o order =
  Hashtbl.replace t.orders_tbl (w, d, o) order;
  Hashtbl.replace t.last_order (w, d, order.o_c_id) o

let order t ~w ~d ~o = Hashtbl.find_opt t.orders_tbl (w, d, o)

let insert_order_line t ~w ~d ~o ~ol line =
  Hashtbl.replace t.order_lines_tbl (w, d, o, ol) line

let order_line t ~w ~d ~o ~ol = Hashtbl.find_opt t.order_lines_tbl (w, d, o, ol)

let push_new_order t ~w ~d ~o =
  Tq_util.Ring_deque.push_back t.new_orders.(district_index t ~w ~d) o

let pop_new_order t ~w ~d =
  Tq_util.Ring_deque.pop_front t.new_orders.(district_index t ~w ~d)

let new_order_depth t ~w ~d =
  Tq_util.Ring_deque.length t.new_orders.(district_index t ~w ~d)

let last_order_id t ~w ~d ~c = Hashtbl.find_opt t.last_order (w, d, c)
