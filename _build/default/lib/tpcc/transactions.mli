(** The five TPC-C transactions and the Table 1 mix. *)

type kind = Payment | Order_status | New_order | Delivery | Stock_level

val kind_name : kind -> string

(** Table 1 mix: Payment 44%, OrderStatus 4%, NewOrder 44%, Delivery 4%,
    StockLevel 4%. *)
val sample_kind : Tq_util.Prng.t -> kind

(** Table 1 service times in nanoseconds. *)
val service_time_ns : kind -> int

type outcome =
  | Ordered of { o_id : int; total : int }  (** new order placed *)
  | Paid of { amount : int }
  | Status of { last_order : int option; undelivered_lines : int }
  | Delivered of { orders : int }  (** orders delivered across districts *)
  | Stock_low of { count : int }  (** items under threshold *)

(** Each transaction picks its own inputs (warehouse, district, customer,
    items) from the PRNG, as the TPC-C driver would. *)

val new_order : Schema.t -> Tq_util.Prng.t -> now_ns:int -> outcome
val payment : Schema.t -> Tq_util.Prng.t -> outcome
val order_status : Schema.t -> Tq_util.Prng.t -> outcome
val delivery : Schema.t -> Tq_util.Prng.t -> outcome
val stock_level : Schema.t -> Tq_util.Prng.t -> outcome

(** [run db rng kind ~now_ns] dispatches on the kind. *)
val run : Schema.t -> Tq_util.Prng.t -> kind -> now_ns:int -> outcome
