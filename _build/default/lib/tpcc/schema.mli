(** Scaled-down in-memory TPC-C schema and database.

    The five-transaction OLTP workload supplies the paper's multi-modal
    service-time distribution (Table 1) and a realistic example
    application.  Money is in integer cents; rows live in hash tables
    keyed by the standard composite keys. *)

type warehouse = { mutable w_ytd : int }
type district = { mutable d_next_o_id : int; mutable d_ytd : int }

type customer = {
  c_last : string;  (** spec last name: syllables of (id mod 1000) *)
  mutable c_balance : int;
  mutable c_ytd_payment : int;
  mutable c_payment_cnt : int;
  mutable c_delivery_cnt : int;
}

type item = { i_price : int }
type stock = { mutable s_quantity : int; mutable s_ytd : int; mutable s_order_cnt : int }

type order = {
  o_c_id : int;
  o_entry_ns : int;
  mutable o_carrier_id : int option;
  o_ol_cnt : int;
}

type order_line = {
  ol_i_id : int;
  ol_quantity : int;
  ol_amount : int;
  mutable ol_delivered : bool;
}

type t

type scale = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
}

(** A small but structurally faithful default: 2 warehouses, 10
    districts each, 100 customers per district, 1000 items. *)
val default_scale : scale

(** [create ?seed ?scale ()] loads initial data (stock ~ uniform 10-100,
    prices uniform 1-100 dollars). *)
val create : ?seed:int64 -> ?scale:scale -> unit -> t

val scale : t -> scale

(** Row accessors; raise [Not_found] for out-of-range ids. *)

val warehouse : t -> w:int -> warehouse
val district : t -> w:int -> d:int -> district
val customer : t -> w:int -> d:int -> c:int -> customer

(** [customers_by_last_name t ~w ~d name] — ascending customer ids with
    that last name (the spec's secondary index). *)
val customers_by_last_name : t -> w:int -> d:int -> string -> int list
val item : t -> i:int -> item
val stock : t -> w:int -> i:int -> stock

(** Orders. *)

val insert_order : t -> w:int -> d:int -> o:int -> order -> unit
val order : t -> w:int -> d:int -> o:int -> order option
val insert_order_line : t -> w:int -> d:int -> o:int -> ol:int -> order_line -> unit
val order_line : t -> w:int -> d:int -> o:int -> ol:int -> order_line option

(** New-order queue (per district, FIFO). *)

val push_new_order : t -> w:int -> d:int -> o:int -> unit
val pop_new_order : t -> w:int -> d:int -> int option
val new_order_depth : t -> w:int -> d:int -> int

(** [last_order_id t ~w ~d ~c] — newest order id of the customer, if
    any. *)
val last_order_id : t -> w:int -> d:int -> c:int -> int option
