(** TPC-C consistency conditions.

    Adapted from the specification's consistency requirements; run after
    any transaction mix to verify the substrate kept its invariants.
    Returns human-readable violations (empty list = consistent). *)

val check : Schema.t -> string list

(** [check_exn db] raises [Failure] with the violations joined. *)
val check_exn : Schema.t -> unit
