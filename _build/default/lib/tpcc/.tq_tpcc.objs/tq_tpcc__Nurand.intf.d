lib/tpcc/nurand.mli: Tq_util
