lib/tpcc/consistency.mli: Schema
