lib/tpcc/transactions.mli: Schema Tq_util
