lib/tpcc/consistency.ml: Format List Schema String
