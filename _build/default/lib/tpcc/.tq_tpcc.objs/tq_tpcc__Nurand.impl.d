lib/tpcc/nurand.ml: Array Tq_util
