lib/tpcc/schema.mli:
