lib/tpcc/schema.ml: Array Hashtbl Nurand Tq_util
