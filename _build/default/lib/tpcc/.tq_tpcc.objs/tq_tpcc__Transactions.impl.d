lib/tpcc/transactions.ml: Hashtbl List Nurand Option Schema Tq_util
