(** Direct-style simulation processes on OCaml effects.

    The event-driven models in this repository schedule closures by
    hand; this module offers the coroutine alternative: a process is a
    plain function that calls [sleep] and blocks on mailboxes, and the
    engine turns each suspension into events.  (SimPy's programming
    model, on one-shot continuations.)

    All operations must be called from inside a process of the same
    simulation.  Processes are cooperative: between suspensions they run
    atomically at one virtual instant. *)

type ctx

(** [spawn sim f] schedules [f ctx] to start at the current time. *)
val spawn : Sim.t -> (ctx -> unit) -> unit

(** [now ctx] — current virtual time (ns). *)
val now : ctx -> int

(** [sim ctx] — the owning simulation (e.g. for {!Mailbox.send}). *)
val sim : ctx -> Sim.t

(** [sleep ctx ns] suspends the process for [ns]. *)
val sleep : ctx -> int -> unit

(** Unbounded typed mailboxes; [send] may be called from process or
    event context, [recv] only from a process. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t

  (** [send sim mb v] — wakes one blocked receiver (FIFO). *)
  val send : Sim.t -> 'a t -> 'a -> unit

  (** [recv ctx mb] — returns immediately when a message is queued,
      otherwise suspends until one arrives. *)
  val recv : ctx -> 'a t -> 'a

  (** [try_recv mb] — non-blocking. *)
  val try_recv : 'a t -> 'a option

  val length : 'a t -> int
end
