module Deque = Tq_util.Ring_deque

type 'a pending = { item : 'a; cost : int; done_ : 'a -> unit }

type 'a t = {
  sim : Sim.t;
  queue : 'a pending Deque.t;
  mutable busy : bool;
  mutable busy_time : int;
  mutable served : int;
}

let create sim () =
  { sim; queue = Deque.create (); busy = false; busy_time = 0; served = 0 }

let rec start_next t =
  match Deque.pop_front t.queue with
  | None -> t.busy <- false
  | Some p ->
      t.busy <- true;
      ignore
        (Sim.schedule_after t.sim ~delay:p.cost (fun () ->
             t.busy_time <- t.busy_time + p.cost;
             t.served <- t.served + 1;
             p.done_ p.item;
             start_next t)
          : Sim.event)

let submit t ~cost item ~done_ =
  if cost < 0 then invalid_arg "Busy_server.submit: negative cost";
  Deque.push_back t.queue { item; cost; done_ };
  if not t.busy then start_next t

let queue_length t = Deque.length t.queue
let busy t = t.busy
let busy_time t = t.busy_time
let served t = t.served
