open Effect
open Effect.Deep

type ctx = { sim : Sim.t }

type _ Effect.t += Sleep : (Sim.t * int) -> unit Effect.t
type _ Effect.t += Block : (Sim.t * ((unit -> unit) -> unit)) -> unit Effect.t

(* [Block (sim, register)] suspends the process and hands [register] a
   resume thunk; whoever calls the thunk schedules the continuation. *)

let spawn sim f =
  let run () =
    match_with
      (fun () -> f { sim })
      ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Sleep (owner, ns) ->
                Some
                  (fun (k : (b, _) continuation) ->
                    ignore
                      (Sim.schedule_after owner ~delay:ns (fun () -> continue k ())
                        : Sim.event))
            | Block (owner, register) ->
                Some
                  (fun (k : (b, _) continuation) ->
                    register (fun () ->
                        ignore
                          (Sim.schedule_after owner ~delay:0 (fun () -> continue k ())
                            : Sim.event)))
            | _ -> None);
      }
  in
  ignore (Sim.schedule_after sim ~delay:0 run : Sim.event)

let now ctx = Sim.now ctx.sim
let sim ctx = ctx.sim

let sleep ctx ns =
  if ns < 0 then invalid_arg "Process.sleep: negative duration";
  perform (Sleep (ctx.sim, ns))

module Mailbox = struct
  module Deque = Tq_util.Ring_deque

  type 'a t = { messages : 'a Deque.t; waiters : (unit -> unit) Deque.t }

  let create () = { messages = Deque.create (); waiters = Deque.create () }

  let send sim mb v =
    Deque.push_back mb.messages v;
    (* Wake one waiter; it re-checks the queue on resume. *)
    match Deque.pop_front mb.waiters with
    | Some resume ->
        ignore (Sim.schedule_after sim ~delay:0 (fun () -> resume ()) : Sim.event)
    | None -> ()

  let try_recv mb = Deque.pop_front mb.messages

  let rec recv ctx mb =
    match Deque.pop_front mb.messages with
    | Some v -> v
    | None ->
        perform (Block (ctx.sim, fun resume -> Deque.push_back mb.waiters resume));
        recv ctx mb

  let length mb = Deque.length mb.messages
end
