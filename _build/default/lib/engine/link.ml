type 'a t = { sim : Sim.t; latency : int; handler : 'a -> unit; mutable sent : int }

let create sim ~latency ~handler =
  if latency < 0 then invalid_arg "Link.create: negative latency";
  { sim; latency; handler; sent = 0 }

let send t x =
  t.sent <- t.sent + 1;
  ignore (Sim.schedule_after t.sim ~delay:t.latency (fun () -> t.handler x) : Sim.event)

let sent t = t.sent
