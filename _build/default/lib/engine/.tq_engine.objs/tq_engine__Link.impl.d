lib/engine/link.ml: Sim
