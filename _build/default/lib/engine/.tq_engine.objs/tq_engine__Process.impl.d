lib/engine/process.ml: Effect Sim Tq_util
