lib/engine/process.mli: Sim
