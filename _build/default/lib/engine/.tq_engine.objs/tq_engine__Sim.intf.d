lib/engine/sim.mli:
