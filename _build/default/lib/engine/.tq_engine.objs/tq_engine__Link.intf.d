lib/engine/link.mli: Sim
