lib/engine/busy_server.ml: Sim Tq_util
