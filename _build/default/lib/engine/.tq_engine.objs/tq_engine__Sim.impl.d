lib/engine/sim.ml: Tq_util
