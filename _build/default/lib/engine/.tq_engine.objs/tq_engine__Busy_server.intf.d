lib/engine/busy_server.mli: Sim
