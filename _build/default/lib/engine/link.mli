(** Fixed-latency unidirectional channel.

    Models a lockless ring-buffer hop or a NIC queue: every message is
    delivered to the receiver's handler exactly [latency] ns after it is
    sent, preserving send order. *)

type 'a t

val create : Sim.t -> latency:int -> handler:('a -> unit) -> 'a t
val send : 'a t -> 'a -> unit
val sent : 'a t -> int
