module Heap = Tq_util.Binary_heap

type event = { action : unit -> unit; mutable state : [ `Pending | `Cancelled | `Fired ] }

type t = { heap : event Heap.t; mutable now : int; mutable processed : int }

let dummy_event = { action = ignore; state = `Fired }
let create () = { heap = Heap.create ~capacity:1024 ~dummy:dummy_event (); now = 0; processed = 0 }
let now t = t.now

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Sim.schedule_at: time is in the past";
  let ev = { action = f; state = `Pending } in
  Heap.push t.heap ~key:time ev;
  ev

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t ~time:(t.now + delay) f

let cancel ev = if ev.state = `Pending then ev.state <- `Cancelled
let cancelled ev = ev.state = `Cancelled

let rec step t =
  if Heap.is_empty t.heap then false
  else begin
    let time, ev = Heap.pop t.heap in
    match ev.state with
    | `Cancelled -> step t
    | `Fired -> assert false
    | `Pending ->
        t.now <- time;
        ev.state <- `Fired;
        t.processed <- t.processed + 1;
        ev.action ();
        true
  end

let run ?until t =
  let continue = ref true in
  while !continue do
    match (Heap.min_key t.heap, until) with
    | None, _ -> continue := false
    | Some key, Some limit when key > limit -> continue := false
    | Some _, _ -> ignore (step t : bool)
  done;
  match until with Some limit when limit > t.now -> t.now <- limit | _ -> ()

let pending t = Heap.length t.heap
let events_processed t = t.processed
