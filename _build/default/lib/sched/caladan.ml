module Sim = Tq_engine.Sim
module Busy_server = Tq_engine.Busy_server
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals

type mode = Iokernel | Directpath

type config = {
  cores : int;
  mode : mode;
  iokernel_op_ns : int;
  directpath_extra_ns : int;
  steal_ns : int;
  finish_ns : int;
  rss_flows : int option;
}

let default_config ~mode ~cores =
  {
    cores;
    mode;
    iokernel_op_ns = 120;
    directpath_extra_ns = 250;
    steal_ns = 200;
    finish_ns = 60;
    rss_flows = None;
  }

type t = {
  sim : Sim.t;
  config : config;
  rng : Prng.t;
  mutable workers : Worker.t array;
  iokernel : Arrivals.request Busy_server.t;
  metrics : Metrics.t;
  mutable steals : int;
}

(* An idle worker scans for the most loaded victim and steals one job. *)
let try_steal t (thief : Worker.t) =
  let best = ref None and best_len = ref 0 in
  Array.iter
    (fun w ->
      let len = Worker.queue_length w in
      if len > !best_len then begin
        best := Some w;
        best_len := len
      end)
    t.workers;
  match !best with
  | None -> ()
  | Some victim -> begin
      match Worker.steal victim with
      | None -> ()
      | Some job ->
          t.steals <- t.steals + 1;
          Worker.note_assigned thief;
          ignore
            (Sim.schedule_after t.sim ~delay:t.config.steal_ns (fun () ->
                 Worker.enqueue thief job)
              : Sim.event)
    end

let create sim ~rng ~config ~metrics =
  if config.cores < 1 then invalid_arg "Caladan.create: need at least one core";
  let on_finish (job : Job.t) =
    Metrics.record metrics ~class_idx:job.class_idx ~arrival_ns:job.arrival_ns
      ~finish_ns:(Sim.now sim) ~service_ns:job.service_ns
  in
  let t =
    {
      sim;
      config;
      rng;
      workers = [||];
      iokernel = Busy_server.create sim ();
      metrics;
      steals = 0;
    }
  in
  let overheads = { Overheads.zero with finish_ns = config.finish_ns } in
  t.workers <-
    Array.init config.cores (fun wid ->
        (* Tie the knot: each worker's idle hook steals through [t]. *)
        let rec worker =
          lazy
            (Worker.create sim ~wid ~rng:(Prng.split rng) ~policy:Worker.Fcfs ~overheads
               ~on_idle:(fun () -> try_steal t (Lazy.force worker))
               ~on_finish ())
        in
        Lazy.force worker);
  t

let deliver t (req : Arrivals.request) =
  (* RSS: hash the flow when connection count is modeled, otherwise a
     uniform random core (the many-connections limit). *)
  let widx =
    match t.config.rss_flows with
    | Some flows ->
        Tq_net.Rss.queue_of_flow
          ~flow:(Tq_net.Rss.flow_of_request ~flows req.req_id)
          ~queues:t.config.cores
    | None -> Prng.int t.rng t.config.cores
  in
  let worker = t.workers.(widx) in
  Worker.note_assigned worker;
  let job = Job.of_request ~probe_overhead_frac:0.0 req in
  (match t.config.mode with
  | Iokernel -> ()
  | Directpath -> job.remaining_ns <- job.remaining_ns + t.config.directpath_extra_ns);
  (* If the RSS-chosen core is busy and someone is idle, stealing will
     rebalance on the idle core's next transition; also rebalance now so
     an already-idle core picks the job up. *)
  Worker.enqueue worker job;
  if Worker.queue_length worker > 0 then begin
    let idle = ref None in
    Array.iter (fun w -> if (not (Worker.is_busy w)) && !idle = None then idle := Some w) t.workers;
    match !idle with Some thief when thief != worker -> try_steal t thief | _ -> ()
  end

let submit t req =
  match t.config.mode with
  | Directpath -> deliver t req
  | Iokernel ->
      Busy_server.submit t.iokernel ~cost:t.config.iokernel_op_ns req
        ~done_:(fun req -> deliver t req)

let steals t = t.steals
