type t = {
  dispatch_ns : int;
  ring_hop_ns : int;
  yield_ns : int;
  finish_ns : int;
  probe_overhead_frac : float;
  quantum_jitter_ns : int;
}

let tq_default =
  {
    dispatch_ns = 70;
    ring_hop_ns = 50;
    yield_ns = 40;
    finish_ns = 60;
    probe_overhead_frac = 0.03;
    quantum_jitter_ns = 100;
  }

let zero =
  {
    dispatch_ns = 0;
    ring_hop_ns = 0;
    yield_ns = 0;
    finish_ns = 0;
    probe_overhead_frac = 0.0;
    quantum_jitter_ns = 0;
  }

let pp fmt t =
  Format.fprintf fmt
    "{dispatch=%dns ring=%dns yield=%dns finish=%dns probe=%.1f%% jitter=%dns}"
    t.dispatch_ns t.ring_hop_ns t.yield_ns t.finish_ns
    (100.0 *. t.probe_overhead_frac)
    t.quantum_jitter_ns
