lib/sched/dispatch_policy.ml: Array List Tq_util Worker
