lib/sched/presets.mli: Caladan Experiment
