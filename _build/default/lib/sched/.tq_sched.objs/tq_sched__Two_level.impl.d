lib/sched/two_level.ml: Array Dispatch_policy Job Overheads Tq_engine Tq_util Tq_workload Worker
