lib/sched/job.mli: Tq_workload
