lib/sched/overheads.ml: Format
