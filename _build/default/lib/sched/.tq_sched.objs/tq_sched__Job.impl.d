lib/sched/job.ml: Float Tq_workload
