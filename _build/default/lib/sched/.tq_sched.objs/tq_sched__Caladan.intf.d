lib/sched/caladan.mli: Tq_engine Tq_util Tq_workload
