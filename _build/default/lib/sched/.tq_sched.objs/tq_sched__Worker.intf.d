lib/sched/worker.mli: Job Overheads Tq_engine Tq_util
