lib/sched/dispatch_policy.mli: Tq_util Worker
