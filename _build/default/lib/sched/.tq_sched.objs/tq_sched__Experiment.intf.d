lib/sched/experiment.mli: Caladan Centralized Tq_workload Two_level
