lib/sched/centralized.mli: Tq_engine Tq_util Tq_workload
