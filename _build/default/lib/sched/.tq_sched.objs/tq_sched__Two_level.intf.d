lib/sched/two_level.mli: Dispatch_policy Overheads Tq_engine Tq_util Tq_workload Worker
