lib/sched/centralized.ml: Array Job Tq_engine Tq_util Tq_workload
