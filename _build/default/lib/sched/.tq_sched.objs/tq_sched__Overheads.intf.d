lib/sched/overheads.mli: Format
