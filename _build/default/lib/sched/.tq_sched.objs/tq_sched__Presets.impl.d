lib/sched/presets.ml: Caladan Centralized Dispatch_policy Experiment Overheads Tq_util Two_level Worker
