lib/sched/experiment.ml: Caladan Centralized Float List Tq_engine Tq_util Tq_workload Two_level
