lib/sched/caladan.ml: Array Job Lazy Overheads Tq_engine Tq_net Tq_util Tq_workload Worker
