lib/sched/worker.ml: Array Job List Overheads Tq_engine Tq_util
