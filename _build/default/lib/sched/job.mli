(** A job: one request being executed by the server.

    [remaining_ns] starts at the *effective* service time (true service
    inflated by the instrumentation overhead of the system under test)
    and is decremented as quanta execute.  [service_ns] stays the true
    service time so slowdown is measured against the uninstrumented
    runtime, as in the paper. *)

type t = {
  id : int;
  class_idx : int;
  service_ns : int;
  arrival_ns : int;
  initial_effective_ns : int;  (** remaining_ns at admission *)
  mutable remaining_ns : int;
  mutable serviced_quanta : int;
}

(** [of_request ~probe_overhead_frac req] admits a request, inflating the
    executable work by the probing overhead fraction. *)
val of_request : probe_overhead_frac:float -> Tq_workload.Arrivals.request -> t

(** [finished j] is true when no work remains. *)
val finished : t -> bool

(** [attained_ns j] — effective service received so far; what
    least-attained-service scheduling orders by. *)
val attained_ns : t -> int
