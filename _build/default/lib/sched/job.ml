type t = {
  id : int;
  class_idx : int;
  service_ns : int;
  arrival_ns : int;
  initial_effective_ns : int;
  mutable remaining_ns : int;
  mutable serviced_quanta : int;
}

let of_request ~probe_overhead_frac (req : Tq_workload.Arrivals.request) =
  if probe_overhead_frac < 0.0 then invalid_arg "Job.of_request: negative overhead";
  let effective =
    int_of_float (Float.round (float_of_int req.service_ns *. (1.0 +. probe_overhead_frac)))
  in
  {
    id = req.req_id;
    class_idx = req.class_idx;
    service_ns = req.service_ns;
    arrival_ns = req.arrival_ns;
    initial_effective_ns = max 1 effective;
    remaining_ns = max 1 effective;
    serviced_quanta = 0;
  }

let finished j = j.remaining_ns <= 0
let attained_ns j = j.initial_effective_ns - j.remaining_ns
