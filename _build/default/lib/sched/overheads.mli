(** Cost model for the two-level (TQ) system.

    Every mechanism the paper discusses has an explicit price here, so
    the breakdown experiments (Figures 11-12) are produced by swapping
    one field at a time.  Calibration sources are given in DESIGN.md. *)

type t = {
  dispatch_ns : int;
      (** dispatcher work per request (poll NIC, pick worker, ring push).
          TQ sustains ~14 Mrps => ~70 ns. *)
  ring_hop_ns : int;  (** latency of the dispatcher->worker ring hop *)
  yield_ns : int;
      (** coroutine yield + scheduler-coroutine decision per preemption
          (Boost yields in 20-40 ns) *)
  finish_ns : int;  (** per-job completion work: TX response, counters *)
  probe_overhead_frac : float;
      (** service-time inflation from compiler probes (TQ pass: a few
          percent; CI pass: tens of percent — Table 3) *)
  quantum_jitter_ns : int;
      (** worst-case overshoot past the target quantum before a probe
          fires (uniform in [0, jitter]) *)
}

(** TQ defaults per DESIGN.md calibration. *)
val tq_default : t

(** All-zero costs: the idealized simulator of Section 2. *)
val zero : t

val pp : Format.formatter -> t -> unit
