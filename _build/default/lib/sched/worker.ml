module Sim = Tq_engine.Sim
module Deque = Tq_util.Ring_deque
module Prng = Tq_util.Prng

type quantum_policy =
  | Ps of { quantum_ns : int; per_class_quantum : int array option }
  | Fcfs
  | Las of { base_quantum_ns : int; max_quantum_ns : int }

type t = {
  sim : Sim.t;
  wid : int;
  rng : Prng.t;
  policy : quantum_policy;
  ov : Overheads.t;
  queue : Job.t Deque.t;
  on_finish : Job.t -> unit;
  on_idle : unit -> unit;
  mutable busy : bool;
  mutable assigned : int;
  mutable finished : int;
  mutable current_quanta : int;
  mutable busy_ns : int;
}

let create sim ~wid ~rng ~policy ~overheads ?(on_idle = ignore) ~on_finish () =
  {
    sim;
    wid;
    rng;
    policy;
    ov = overheads;
    queue = Deque.create ();
    on_finish;
    on_idle;
    busy = false;
    assigned = 0;
    finished = 0;
    current_quanta = 0;
    busy_ns = 0;
  }

let wid t = t.wid

let jitter t =
  if t.ov.quantum_jitter_ns > 0 then Prng.int t.rng (t.ov.quantum_jitter_ns + 1) else 0

let quantum_for t (job : Job.t) =
  match t.policy with
  | Fcfs -> None
  | Ps { quantum_ns; per_class_quantum } ->
      let base =
        match per_class_quantum with
        | Some arr when job.class_idx < Array.length arr -> arr.(job.class_idx)
        | _ -> quantum_ns
      in
      Some (base + jitter t)
  | Las { base_quantum_ns; max_quantum_ns } ->
      (* Doubling quanta with attained service: a fresh job preempts
         quickly; a long-running one earns longer slices. *)
      let attained = Job.attained_ns job in
      let quantum = max base_quantum_ns (min max_quantum_ns attained) in
      Some (quantum + jitter t)

(* LAS serves the job with the least attained service; PS/FCFS serve the
   queue head. *)
let pop_next t =
  match t.policy with
  | Ps _ | Fcfs -> Deque.pop_front t.queue
  | Las _ ->
      if Deque.is_empty t.queue then None
      else begin
        let best = ref 0 and best_attained = ref max_int in
        Deque.iter
          (fun (j : Job.t) ->
            let a = Job.attained_ns j in
            if a < !best_attained then best_attained := a)
          t.queue;
        (* Find the first job achieving the minimum, preserving FIFO
           order among equals. *)
        let n = Deque.length t.queue in
        let rec find i =
          if i >= n then 0
          else if Job.attained_ns (Deque.get t.queue i) = !best_attained then i
          else find (i + 1)
        in
        best := find 0;
        (* Rotate the winner to the front, then pop. *)
        let rec extract i acc =
          if i = 0 then Deque.pop_front t.queue
          else begin
            (match Deque.pop_front t.queue with
            | Some j -> acc := j :: !acc
            | None -> assert false);
            extract (i - 1) acc
          end
        in
        let skipped = ref [] in
        let winner = extract !best skipped in
        List.iter (Deque.push_front t.queue) !skipped;
        winner
      end

let rec run_next t =
  match pop_next t with
  | None ->
      t.busy <- false;
      t.on_idle ()
  | Some job ->
      t.busy <- true;
      let slice, finishes =
        match quantum_for t job with
        | None -> (job.remaining_ns, true)
        | Some q ->
            if job.remaining_ns <= q then (job.remaining_ns, true)
            else (q, false)
      in
      let extra = if finishes then t.ov.finish_ns else t.ov.yield_ns in
      let busy_for = slice + extra in
      ignore
        (Sim.schedule_after t.sim ~delay:busy_for (fun () ->
             t.busy_ns <- t.busy_ns + busy_for;
             job.remaining_ns <- job.remaining_ns - slice;
             job.serviced_quanta <- job.serviced_quanta + 1;
             t.current_quanta <- t.current_quanta + 1;
             if finishes then begin
               t.current_quanta <- t.current_quanta - job.serviced_quanta;
               t.finished <- t.finished + 1;
               t.on_finish job
             end
             else Deque.push_back t.queue job;
             run_next t)
          : Sim.event)

let enqueue t job =
  Deque.push_back t.queue job;
  if not t.busy then run_next t

let unfinished t = t.assigned - t.finished
let current_quanta t = t.current_quanta
let finished_jobs t = t.finished
let busy_ns t = t.busy_ns
let queue_length t = Deque.length t.queue
let note_assigned t = t.assigned <- t.assigned + 1
let is_busy t = t.busy

let steal t =
  match Deque.pop_back t.queue with
  | Some job ->
      (* The job leaves this core: its load transfers to the thief, which
         calls [note_assigned] on itself. *)
      t.assigned <- t.assigned - 1;
      Some job
  | None -> None
