module Sim = Tq_engine.Sim
module Busy_server = Tq_engine.Busy_server
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals

type config = {
  cores : int;
  dispatchers : int;
  quantum_policy : Worker.quantum_policy;
  dispatch_policy : Dispatch_policy.t;
  overheads : Overheads.t;
}

let default_config =
  {
    cores = 16;
    dispatchers = 1;
    quantum_policy = Worker.Ps { quantum_ns = 2_000; per_class_quantum = None };
    dispatch_policy = Dispatch_policy.Jsq_msq;
    overheads = Overheads.tq_default;
  }

type dispatcher = {
  server : Arrivals.request Busy_server.t;
  chooser : Dispatch_policy.chooser;
}

type t = {
  sim : Sim.t;
  config : config;
  workers : Worker.t array;
  dispatchers : dispatcher array;
  metrics : Metrics.t;
}

let create sim ~rng ~config ~metrics =
  if config.cores < 1 then invalid_arg "Two_level.create: need at least one core";
  if config.dispatchers < 1 then
    invalid_arg "Two_level.create: need at least one dispatcher";
  let ov = config.overheads in
  let on_finish (job : Job.t) =
    Metrics.record metrics ~class_idx:job.class_idx ~arrival_ns:job.arrival_ns
      ~finish_ns:(Sim.now sim) ~service_ns:job.service_ns
  in
  let workers =
    Array.init config.cores (fun wid ->
        Worker.create sim ~wid ~rng:(Prng.split rng) ~policy:config.quantum_policy
          ~overheads:ov ~on_finish ())
  in
  let dispatchers =
    Array.init config.dispatchers (fun _ ->
        {
          server = Busy_server.create sim ();
          chooser = Dispatch_policy.make_chooser config.dispatch_policy ~rng:(Prng.split rng);
        })
  in
  { sim; config; workers; dispatchers; metrics }

let submit t req =
  let ov = t.config.overheads in
  (* RSS across dispatcher cores; each balances over all workers using
     the shared (worker-maintained) counters. *)
  let d = t.dispatchers.(req.Arrivals.req_id mod Array.length t.dispatchers) in
  Busy_server.submit d.server ~cost:ov.dispatch_ns req
    ~done_:(fun (req : Arrivals.request) ->
      let widx = Dispatch_policy.choose d.chooser t.workers in
      let worker = t.workers.(widx) in
      Worker.note_assigned worker;
      let job = Job.of_request ~probe_overhead_frac:ov.probe_overhead_frac req in
      ignore
        (Sim.schedule_after t.sim ~delay:ov.ring_hop_ns (fun () ->
             Worker.enqueue worker job)
          : Sim.event))

let dispatcher_busy_ns t =
  Array.fold_left (fun acc d -> acc + Busy_server.busy_time d.server) 0 t.dispatchers

let dispatcher_queue_length t =
  Array.fold_left (fun acc d -> acc + Busy_server.queue_length d.server) 0 t.dispatchers

let max_dispatcher_busy_ns t =
  Array.fold_left (fun acc d -> max acc (Busy_server.busy_time d.server)) 0 t.dispatchers

let workers t = t.workers
