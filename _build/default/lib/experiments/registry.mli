(** Every reproduced experiment, addressable by id for the CLI and the
    benchmark harness. *)

type experiment = {
  id : string;  (** e.g. "fig7", "table3" *)
  summary : string;
  plot : bool;  (** render each table also as an ASCII chart *)
  tables : unit -> Tq_util.Text_table.t list;
}

(** In paper order. *)
val all : experiment list

val find : string -> experiment option

(** [run_and_print e] renders every table of [e] to stdout. *)
val run_and_print : experiment -> unit
