(** Section 5.6 component microbenchmarks (Table 3, Figure 16) and the
    Section 6 dispatcher-throughput comparison. *)

(** Table 3: probing overhead %% and yield-timing MAE for CI, CI-Cycles
    and TQ over the 27-program suite (2 us target quantum). *)
val table3 : unit -> Tq_util.Text_table.t

(** Figure 16: maximum worker cores each dispatcher sustains per target
    quantum (achieved quantum within 10%% of target), Shinjuku vs TQ. *)
val fig16 : unit -> Tq_util.Text_table.t

(** Section 6: sustainable dispatcher throughput — TQ's load-balancing
    only dispatcher vs centralized (Shinjuku-like, Concord-like). *)
val dispatcher_throughput : unit -> Tq_util.Text_table.t
