module Text_table = Tq_util.Text_table
module Time_unit = Tq_util.Time_unit
module Table1 = Tq_workload.Table1
module Arrivals = Tq_workload.Arrivals
module Metrics = Tq_workload.Metrics
module Experiment = Tq_sched.Experiment
module Centralized = Tq_sched.Centralized
module Two_level = Tq_sched.Two_level
module Worker = Tq_sched.Worker
module Dispatch_policy = Tq_sched.Dispatch_policy
module Overheads = Tq_sched.Overheads

let workload = Table1.extreme_bimodal_sim
let cores = 16
let capacity = Arrivals.capacity_rps ~cores workload
let quanta_us = [ 0.5; 1.0; 2.0; 5.0; 10.0 ]
let load_fracs = [ 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let slowdown_p999 (r : Experiment.result) =
  Metrics.overall_slowdown_percentile r.metrics 99.9

let ideal_at ~quantum_ns ~preempt_ns ~rate =
  let config = { (Centralized.ideal_config ~quantum_ns ~cores) with preempt_ns } in
  Harness.run
    ~system:(Experiment.Centralized config)
    ~workload ~rate_rps:rate ~duration_ns:(Harness.duration_ms 30.0)

let fig1 () =
  let t =
    Text_table.create ~title:"Figure 1: p99.9 slowdown vs load, ideal centralized PS"
      ~columns:
        ("load" :: List.map (fun q -> Printf.sprintf "q=%gus" q) quanta_us)
  in
  List.iter
    (fun frac ->
      let rate = frac *. capacity in
      let cells =
        List.map
          (fun q ->
            let r = ideal_at ~quantum_ns:(Time_unit.us q) ~preempt_ns:0 ~rate in
            Text_table.cell_f (slowdown_p999 r))
          quanta_us
      in
      Text_table.add_row t (Printf.sprintf "%.0f%%" (100.0 *. frac) :: cells))
    load_fracs;
  t

let fig2 () =
  let overheads_ns = [ 0; 100; 1_000 ] in
  let quanta_us = [ 0.5; 1.0; 2.0; 3.0; 5.0; 10.0 ] in
  let search_fracs = [ 0.3; 0.4; 0.5; 0.55; 0.6; 0.65; 0.7; 0.75; 0.8; 0.85; 0.9; 0.95 ] in
  let t =
    Text_table.create
      ~title:"Figure 2: max rate (Mrps) with p99.9 slowdown <= 10, per preemption overhead"
      ~columns:
        ("quantum"
        :: List.map (fun o -> Printf.sprintf "oh=%gus" (float_of_int o /. 1e3)) overheads_ns)
  in
  List.iter
    (fun q ->
      let cells =
        List.map
          (fun preempt_ns ->
            let best =
              Experiment.max_rate_under_slo
                ~run_at:(fun rate -> ideal_at ~quantum_ns:(Time_unit.us q) ~preempt_ns ~rate)
                ~rates:(Harness.rates ~capacity search_fracs)
                ~ok:(fun r -> slowdown_p999 r <= 10.0)
            in
            Harness.mrps best)
          overheads_ns
      in
      Text_table.add_row t (Printf.sprintf "%gus" q :: cells))
    quanta_us;
  t

let fig4 () =
  let quantum_ns = Time_unit.us 1.0 in
  let tls tie =
    Experiment.Two_level
      {
        Two_level.cores;
        dispatchers = 1;
        quantum_policy = Worker.Ps { quantum_ns; per_class_quantum = None };
        dispatch_policy = tie;
        overheads = Overheads.zero;
      }
  in
  let systems =
    [
      ("CT", Experiment.Centralized (Centralized.ideal_config ~quantum_ns ~cores));
      ("TLS-MSQ", tls Dispatch_policy.Jsq_msq);
      ("TLS-RAND-TIE", tls Dispatch_policy.Jsq_random);
    ]
  in
  let t =
    Text_table.create
      ~title:"Figure 4: long-job p99.9 slowdown, centralized vs two-level (no overhead)"
      ~columns:("load" :: List.map fst systems)
  in
  List.iter
    (fun frac ->
      let rate = frac *. capacity in
      let cells =
        List.map
          (fun (_, system) ->
            (* Long jobs are 0.5% of arrivals: average the tail over
               several seeds to tame sampling noise. *)
            let results =
              Experiment.run_seeds
                ~seeds:[ 42L; 43L; 44L ]
                ~system ~workload ~rate_rps:rate
                ~duration_ns:(Harness.duration_ms 30.0) ()
            in
            Text_table.cell_f
              (Experiment.mean_slowdown_percentile results ~class_idx:1 99.9))
          systems
      in
      Text_table.add_row t (Printf.sprintf "%.0f%%" (100.0 *. frac) :: cells))
    load_fracs;
  t
