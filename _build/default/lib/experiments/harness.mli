(** Shared plumbing for the figure/table reproductions. *)

(** Global scale factor from [TQ_BENCH_SCALE] (default 1.0): multiplies
    every experiment's simulated duration.  0.2 gives a quick smoke run;
    4.0 tightens tail percentiles. *)
val scale : float

(** [duration_ms ms] — scaled duration in ns (floors at 4 ms). *)
val duration_ms : float -> int

(** Client-side network round trip added to sojourn for "end-to-end"
    latencies (the paper's cross-system metric). *)
val rtt_ns : int

(** [run ~system ~workload ~rate_rps ~duration_ns] with a fixed seed. *)
val run :
  system:Tq_sched.Experiment.system_spec ->
  workload:Tq_workload.Service_dist.t ->
  rate_rps:float ->
  duration_ns:int ->
  Tq_sched.Experiment.result

(** [e2e_p999_us result ~class_idx] — 99.9th percentile end-to-end
    latency in microseconds (sojourn + RTT). *)
val e2e_p999_us : Tq_sched.Experiment.result -> class_idx:int -> float

(** [sojourn_p999_us result ~class_idx]. *)
val sojourn_p999_us : Tq_sched.Experiment.result -> class_idx:int -> float

(** [rates ~capacity fracs] — absolute request rates for load fractions. *)
val rates : capacity:float -> float list -> float list

(** [mrps rate] formats a rate as Mrps with 2 decimals. *)
val mrps : float -> string

(** [caladan_best ~workload ~rate_rps ~duration_ns ~class_idx] — run
    both Caladan modes and return the result with the better tail for
    [class_idx], as the paper reports. *)
val caladan_best :
  workload:Tq_workload.Service_dist.t ->
  rate_rps:float ->
  duration_ns:int ->
  class_idx:int ->
  Tq_sched.Experiment.result
