module Text_table = Tq_util.Text_table
module Table1 = Tq_workload.Table1
module Arrivals = Tq_workload.Arrivals
module Presets = Tq_sched.Presets

let workload = Table1.rocksdb_scan_0_5
let capacity = Arrivals.capacity_rps ~cores:16 workload
let fracs = [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let variant_table ~title ~variants =
  let duration = Harness.duration_ms 40.0 in
  let columns =
    "rate(Mrps)"
    :: List.concat_map (fun (name, _) -> [ name ^ " GET"; name ^ " SCAN" ]) variants
  in
  let t = Text_table.create ~title ~columns in
  List.iter
    (fun frac ->
      let rate = frac *. capacity in
      let cells =
        List.concat_map
          (fun (_, system) ->
            let r = Harness.run ~system ~workload ~rate_rps:rate ~duration_ns:duration in
            [
              Text_table.cell_f (Harness.sojourn_p999_us r ~class_idx:0);
              Text_table.cell_f (Harness.sojourn_p999_us r ~class_idx:1);
            ])
          variants
      in
      Text_table.add_row t (Harness.mrps rate :: cells))
    fracs;
  t

let fig11 () =
  variant_table
    ~title:"Figure 11: forced-multitasking breakdown, RocksDB 0.5% SCAN (p99.9 sojourn us)"
    ~variants:
      [
        ("TQ", Presets.tq ());
        ("TQ-IC", Presets.tq_ic ());
        ("TQ-SLOW-YIELD", Presets.tq_slow_yield ());
        ("TQ-TIMING", Presets.tq_timing ());
      ]

let fig12 () =
  variant_table
    ~title:"Figure 12: scheduling breakdown, RocksDB 0.5% SCAN (p99.9 sojourn us)"
    ~variants:
      [
        ("TQ", Presets.tq ());
        ("TQ-RAND", Presets.tq_rand ());
        ("TQ-POWER-TWO", Presets.tq_power_two ());
        ("TQ-FCFS", Presets.tq_fcfs ());
      ]
