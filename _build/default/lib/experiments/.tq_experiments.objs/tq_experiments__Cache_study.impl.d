lib/experiments/cache_study.ml: Float Harness List Printf Tq_cache Tq_kv Tq_stats Tq_util
