lib/experiments/harness.ml: Float List Printf Sys Tq_sched Tq_util Tq_workload
