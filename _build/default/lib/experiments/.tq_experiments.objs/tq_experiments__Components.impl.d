lib/experiments/components.ml: List Printf Tq_engine Tq_instrument Tq_sched Tq_util Tq_workload
