lib/experiments/cache_study.mli: Tq_util
