lib/experiments/breakdown.mli: Tq_util
