lib/experiments/extensions.ml: Harness List Printf Tq_cache Tq_engine Tq_net Tq_sched Tq_util Tq_workload
