lib/experiments/comparison.ml: Harness List Printf Tq_sched Tq_util Tq_workload
