lib/experiments/harness.mli: Tq_sched Tq_workload
