lib/experiments/extensions.mli: Tq_util
