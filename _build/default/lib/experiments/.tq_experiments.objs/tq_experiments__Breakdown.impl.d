lib/experiments/breakdown.ml: Harness List Tq_sched Tq_util Tq_workload
