lib/experiments/registry.mli: Tq_util
