lib/experiments/registry.ml: Breakdown Cache_study Comparison Components Extensions List Motivation Printf Tq_util
