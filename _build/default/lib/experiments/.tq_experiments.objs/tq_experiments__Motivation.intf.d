lib/experiments/motivation.mli: Tq_util
