lib/experiments/components.mli: Tq_util
