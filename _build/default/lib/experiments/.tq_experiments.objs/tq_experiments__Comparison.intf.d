lib/experiments/comparison.mli: Tq_util
