module Experiment = Tq_sched.Experiment
module Metrics = Tq_workload.Metrics

let scale =
  match Sys.getenv_opt "TQ_BENCH_SCALE" with
  | None -> 1.0
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ -> 1.0)

let duration_ms ms = max (Tq_util.Time_unit.ms 4.0) (Tq_util.Time_unit.ms (ms *. scale))
let rtt_ns = 8_000

let run ~system ~workload ~rate_rps ~duration_ns =
  Experiment.run ~seed:42L ~system ~workload ~rate_rps ~duration_ns ()

let sojourn_p999_us (r : Experiment.result) ~class_idx =
  Metrics.sojourn_percentile r.metrics ~class_idx 99.9 /. 1e3

let e2e_p999_us (r : Experiment.result) ~class_idx =
  (Metrics.sojourn_percentile r.metrics ~class_idx 99.9 +. float_of_int rtt_ns) /. 1e3

let rates ~capacity fracs = List.map (fun f -> f *. capacity) fracs
let mrps rate = Printf.sprintf "%.2f" (rate /. 1e6)

let caladan_best ~workload ~rate_rps ~duration_ns ~class_idx =
  let run_mode mode =
    run ~system:(Tq_sched.Presets.caladan ~mode ()) ~workload ~rate_rps ~duration_ns
  in
  let io = run_mode Tq_sched.Caladan.Iokernel in
  let dp = run_mode Tq_sched.Caladan.Directpath in
  let tail r = Metrics.sojourn_percentile r.Experiment.metrics ~class_idx 99.9 in
  let t_io = tail io and t_dp = tail dp in
  if Float.is_nan t_io then dp
  else if Float.is_nan t_dp then io
  else if t_io <= t_dp then io
  else dp
