(** Section 2 motivating simulations (Figures 1, 2, 4).

    Idealized centralized processor sharing on 16 cores with the
    extreme-bimodal workload (99.5% x 0.5us, 0.5% x 500us), preemption
    overheads swept explicitly. *)

(** Figure 1: p99.9 slowdown vs offered load for quanta 0.5-10 us,
    zero overhead. *)
val fig1 : unit -> Tq_util.Text_table.t

(** Figure 2: max rate sustaining p99.9 slowdown <= 10, per quantum, for
    preemption overheads {0, 0.1, 1} us. *)
val fig2 : unit -> Tq_util.Text_table.t

(** Figure 4: long-job p99.9 slowdown — centralized PS vs two-level
    JSQ-PS with MSQ vs random tie-breaking, zero overheads. *)
val fig4 : unit -> Tq_util.Text_table.t
