(** Section 5.4 ablations (Figures 11-12) on RocksDB with 0.5% SCAN.

    Figure 11 swaps forced-multitasking ingredients: TQ-IC (instruction-
    counter instrumentation, +60% probing overhead), TQ-SLOW-YIELD
    (+1 us per yield), TQ-TIMING (mis-sized per-class quanta).
    Figure 12 swaps scheduling policies: TQ-RAND, TQ-POWER-TWO, TQ-FCFS. *)

val fig11 : unit -> Tq_util.Text_table.t
val fig12 : unit -> Tq_util.Text_table.t
