(** The Section 5.2-5.3 system evaluation (Figures 5-10).

    End-to-end p99.9 latency (sojourn + client RTT) versus offered load,
    for TQ, the Shinjuku model (per-workload optimal quantum) and the
    better Caladan mode — on every Table 1 workload. *)

(** Figures 5 and 6: TQ quantum-size sweep on Extreme Bimodal, short and
    long job classes. *)
val fig5_6 : unit -> Tq_util.Text_table.t list

(** Figure 7: Extreme and High Bimodal, three systems, both classes. *)
val fig7 : unit -> Tq_util.Text_table.t list

(** Figure 8: TPC-C — overall p99.9 slowdown and per-extreme-class
    latency. *)
val fig8 : unit -> Tq_util.Text_table.t list

(** Figure 9: Exp(1). *)
val fig9 : unit -> Tq_util.Text_table.t list

(** Figure 10: RocksDB with 0.5% and 50% SCAN. *)
val fig10 : unit -> Tq_util.Text_table.t list
