(* splitmix64-style integer mix: deterministic, well spread. *)
let mix x =
  let open Int64 in
  let z = add (of_int x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (* Keep 62 bits: OCaml's int is 63-bit, so a 63-bit value would wrap
     negative through Int64.to_int. *)
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 2)

let queue_of_flow ~flow ~queues =
  if queues <= 0 then invalid_arg "Rss.queue_of_flow: queues must be positive";
  mix flow mod queues

let flow_of_request ~flows req_id =
  if flows <= 0 then invalid_arg "Rss.flow_of_request: flows must be positive";
  req_id mod flows

let spread ~flows ~queues =
  let hit = Array.make queues false in
  for flow = 0 to flows - 1 do
    hit.(queue_of_flow ~flow ~queues) <- true
  done;
  Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 hit
