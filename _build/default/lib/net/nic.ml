module Sim = Tq_engine.Sim

type t = {
  sim : Sim.t;
  per_packet_ns : int;
  rx_depth : int;
  occupancy : unit -> int;
  deliver : Tq_workload.Arrivals.request -> unit;
  mutable delivered : int;
  mutable dropped : int;
}

let create sim ?(per_packet_ns = 30) ~rx_depth ~occupancy ~deliver () =
  if rx_depth <= 0 then invalid_arg "Nic.create: rx_depth must be positive";
  { sim; per_packet_ns; rx_depth; occupancy; deliver; delivered = 0; dropped = 0 }

let receive t req =
  if t.occupancy () >= t.rx_depth then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    t.delivered <- t.delivered + 1;
    ignore
      (Sim.schedule_after t.sim ~delay:t.per_packet_ns (fun () -> t.deliver req)
        : Sim.event);
    true
  end

let delivered t = t.delivered
let dropped t = t.dropped

let drop_rate t =
  let total = t.delivered + t.dropped in
  if total = 0 then nan else float_of_int t.dropped /. float_of_int total
