lib/net/nic.ml: Tq_engine Tq_workload
