lib/net/nic.mli: Tq_engine Tq_workload
