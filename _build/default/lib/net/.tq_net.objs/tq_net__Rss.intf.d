lib/net/rss.mli:
