lib/net/rss.ml: Array Int64
