(** A NIC receive path with a finite descriptor ring.

    The simulations elsewhere assume infinite queues (tails explode at
    overload); a real NIC drops packets once the RX ring fills because
    the polling core fell behind.  This module adds that admission
    behaviour in front of any system: each packet pays a small DMA cost,
    then is delivered iff current occupancy (read from the server, e.g.
    the dispatcher's queue length) is under the ring depth. *)

type t

(** [create sim ~rx_depth ~occupancy ~deliver ()] — [occupancy] is
    polled at arrival time; [per_packet_ns] models DMA/descriptor
    handling latency before delivery (default 30). *)
val create :
  Tq_engine.Sim.t ->
  ?per_packet_ns:int ->
  rx_depth:int ->
  occupancy:(unit -> int) ->
  deliver:(Tq_workload.Arrivals.request -> unit) ->
  unit ->
  t

(** [receive t req] — true if admitted, false if dropped. *)
val receive : t -> Tq_workload.Arrivals.request -> bool

val delivered : t -> int
val dropped : t -> int

(** Fraction of offered packets dropped; nan before any arrival. *)
val drop_rate : t -> float
