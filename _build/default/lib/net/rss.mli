(** Receive-side scaling.

    NICs steer packets to queues by hashing the flow 5-tuple; all
    packets of one connection land on the same queue.  With many
    concurrent client connections the spread is near-uniform; with few,
    hash collisions leave queues idle while others overflow — the
    balance behaviour the Caladan model inherits. *)

(** [queue_of_flow ~flow ~queues] — deterministic hash of a flow id onto
    a queue index. *)
val queue_of_flow : flow:int -> queues:int -> int

(** [flow_of_request ~flows req_id] — assign a request to one of [flows]
    client connections (requests round-robin over connections, like an
    open-loop generator multiplexing over a pool). *)
val flow_of_request : flows:int -> int -> int

(** [spread ~flows ~queues] — how many of [queues] receive at least one
    of [flows] (diagnostic for collision-induced imbalance). *)
val spread : flows:int -> queues:int -> int
