(** CFG analyses used by the instrumentation passes. *)

(** [topo_order f] — block ids in topological order of the forward CFG
    (back edges, i.e. latch->header edges, ignored).  Structured CFGs
    are acyclic once back edges are removed. *)
val topo_order : Cfg.func -> Cfg.block_id list

(** A natural loop. *)
type loop = {
  header : Cfg.block_id;
  latch : Cfg.block_id;
  exit : Cfg.block_id;
  body : Cfg.block_id list;  (** all blocks in the loop, header included *)
  trips : Cfg.trip_count;
  induction : bool;
  depth : int;  (** nesting depth, outermost = 1 *)
}

(** [loops f] — every loop in the function, outermost first. *)
val loops : Cfg.func -> loop list

(** [loop_of_latch f latch] — the loop whose latch is [latch]. *)
val loop_of_latch : Cfg.func -> Cfg.block_id -> loop option

(** [is_self_loop l] — single-block loop (header = latch). *)
val is_self_loop : loop -> bool

(** [expected_block_cycles b] — mean cycles of a block's instructions
    (externals at face value, calls at call overhead only). *)
val expected_block_cycles : Cfg.block -> float

(** [reachable f] — blocks reachable from entry. *)
val reachable : Cfg.func -> bool array
