type block_id = int
type trip_count = Static of int | Dynamic of { lo : int; hi : int }

type terminator =
  | Jump of block_id
  | Branch of { taken_prob : float; if_true : block_id; if_false : block_id }
  | Latch of { header : block_id; exit : block_id; trips : trip_count; induction : bool }
  | Ret

type block = { id : block_id; mutable instrs : Instr.t list; mutable term : terminator }
type func = { fname : string; entry : block_id; blocks : block array }
type program = { funcs : (string * func) list; main : string }

let func_of_program p name = List.assoc name p.funcs

let successors = function
  | Jump b -> [ b ]
  | Branch { if_true; if_false; _ } -> [ if_true; if_false ]
  | Latch { header; exit; _ } -> [ header; exit ]
  | Ret -> []

let invalid fmt = Format.kasprintf (fun s -> invalid_arg ("Cfg.validate: " ^ s)) fmt

let validate_func p f =
  let n = Array.length f.blocks in
  if n = 0 then invalid "%s: no blocks" f.fname;
  if f.entry < 0 || f.entry >= n then invalid "%s: entry out of range" f.fname;
  Array.iteri
    (fun i b ->
      if b.id <> i then invalid "%s: block id mismatch at %d" f.fname i;
      List.iter
        (fun target ->
          if target < 0 || target >= n then
            invalid "%s: block %d targets missing block %d" f.fname i target)
        (successors b.term);
      (match b.term with
      | Branch { taken_prob; _ } ->
          if taken_prob < 0.0 || taken_prob > 1.0 then
            invalid "%s: block %d branch probability out of range" f.fname i
      | Latch { trips = Static k; _ } ->
          if k < 0 then invalid "%s: block %d negative trip count" f.fname i
      | Latch { trips = Dynamic { lo; hi }; _ } ->
          if lo < 0 || hi < lo then invalid "%s: block %d bad trip range" f.fname i
      | Jump _ | Ret -> ());
      List.iter
        (function
          | Instr.Call callee ->
              if not (List.mem_assoc callee p.funcs) then
                invalid "%s: call to undefined function %s" f.fname callee
          | _ -> ())
        b.instrs)
    f.blocks

let validate p =
  if not (List.mem_assoc p.main p.funcs) then invalid "main %s undefined" p.main;
  List.iter (fun (_, f) -> validate_func p f) p.funcs

let predecessors f =
  let preds = Array.make (Array.length f.blocks) [] in
  Array.iter
    (fun b -> List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) (successors b.term))
    f.blocks;
  Array.map List.rev preds

let block_instruction_count b =
  List.fold_left (fun acc i -> acc + Instr.instruction_weight i) 0 b.instrs

let func_instruction_count f =
  Array.fold_left (fun acc b -> acc + block_instruction_count b) 0 f.blocks

let probe_count f =
  Array.fold_left
    (fun acc b ->
      acc + List.length (List.filter Instr.is_probe b.instrs))
    0 f.blocks

let program_probe_count p =
  List.fold_left (fun acc (_, f) -> acc + probe_count f) 0 p.funcs

let map_blocks fn f =
  let blocks = Array.map fn f.blocks in
  Array.iteri
    (fun i b -> if b.id <> i then invalid_arg "Cfg.map_blocks: id changed")
    blocks;
  { f with blocks }

let mean_trips = function
  | Static k -> float_of_int k
  | Dynamic { lo; hi } -> (float_of_int lo +. float_of_int hi) /. 2.0

let pp_term fmt = function
  | Jump b -> Format.fprintf fmt "jump %d" b
  | Branch { taken_prob; if_true; if_false } ->
      Format.fprintf fmt "br %.2f -> %d | %d" taken_prob if_true if_false
  | Latch { header; exit; trips; induction } ->
      let trips_s =
        match trips with
        | Static k -> string_of_int k
        | Dynamic { lo; hi } -> Printf.sprintf "%d..%d" lo hi
      in
      Format.fprintf fmt "latch header=%d exit=%d trips=%s%s" header exit trips_s
        (if induction then " iv" else "")
  | Ret -> Format.pp_print_string fmt "ret"

let pp_func fmt f =
  Format.fprintf fmt "func %s entry=%d@." f.fname f.entry;
  Array.iter
    (fun b ->
      Format.fprintf fmt "  b%d:@." b.id;
      List.iter (fun i -> Format.fprintf fmt "    %a@." Instr.pp i) b.instrs;
      Format.fprintf fmt "    %a@." pp_term b.term)
    f.blocks

module Builder = struct
  type builder_block = { mutable rev_instrs : Instr.t list; mutable bterm : terminator }

  type t = {
    fname : string;
    mutable blocks : builder_block array;
    mutable count : int;
    mutable cur : block_id;
  }

  let fresh_block () = { rev_instrs = []; bterm = Ret }

  let create ~fname =
    let blocks = Array.init 8 (fun _ -> fresh_block ()) in
    { fname; blocks; count = 1; cur = 0 }

  let emit t i =
    let b = t.blocks.(t.cur) in
    b.rev_instrs <- i :: b.rev_instrs

  let new_block t =
    if t.count = Array.length t.blocks then begin
      let blocks = Array.init (2 * t.count) (fun _ -> fresh_block ()) in
      Array.blit t.blocks 0 blocks 0 t.count;
      t.blocks <- blocks
    end;
    t.blocks.(t.count) <- fresh_block ();
    t.count <- t.count + 1;
    t.count - 1

  let switch_to t id =
    if id < 0 || id >= t.count then invalid_arg "Builder.switch_to: bad id";
    t.cur <- id

  let current t = t.cur
  let terminate t term = t.blocks.(t.cur).bterm <- term

  let set_term t id term =
    if id < 0 || id >= t.count then invalid_arg "Builder.set_term: bad id";
    t.blocks.(id).bterm <- term

  let finish t =
    let blocks =
      Array.init t.count (fun i ->
          { id = i; instrs = List.rev t.blocks.(i).rev_instrs; term = t.blocks.(i).bterm })
    in
    { fname = t.fname; entry = 0; blocks }
end
