type work = {
  alu : int;
  muls : int;
  divs : int;
  loads : int;
  miss_prob : float;
  stores : int;
}

type t =
  | Work of work
  | Seq of t list
  | If of { prob : float; then_ : t; else_ : t }
  | Loop of { trips : Cfg.trip_count; induction : bool; body : t }
  | CallFn of string
  | External of { name : string; cycles : int }

type program_src = { src_funcs : (string * t) list; src_main : string }

let work n = Work { alu = n; muls = 0; divs = 0; loads = 0; miss_prob = 0.0; stores = 0 }

let mixed ?(alu = 0) ?(muls = 0) ?(divs = 0) ?(loads = 0) ?(miss_prob = 0.05) ?(stores = 0)
    () =
  Work { alu; muls; divs; loads; miss_prob; stores }

let seq ts = Seq ts
let if_ ~prob then_ else_ = If { prob; then_; else_ }
let loop ?(induction = false) ~trips body = Loop { trips; induction; body }
let loop_n ?induction n body = loop ?induction ~trips:(Cfg.Static n) body
let loop_dyn ?induction ~lo ~hi body = loop ?induction ~trips:(Cfg.Dynamic { lo; hi }) body

let work_count w = w.alu + w.muls + w.divs + w.loads + w.stores

let expected_instruction_count src name =
  let memo = Hashtbl.create 8 in
  let rec count_fn name =
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
        (* Guard against recursion: charge 0 while computing. *)
        Hashtbl.replace memo name 0.0;
        let body =
          match List.assoc_opt name src.src_funcs with
          | Some b -> b
          | None -> invalid_arg ("Ast.expected_instruction_count: unknown " ^ name)
        in
        let v = count body in
        Hashtbl.replace memo name v;
        v
  and count = function
    | Work w -> float_of_int (work_count w)
    | Seq ts -> List.fold_left (fun acc t -> acc +. count t) 0.0 ts
    | If { prob; then_; else_ } -> (prob *. count then_) +. ((1.0 -. prob) *. count else_)
    | Loop { trips; body; _ } -> Cfg.mean_trips trips *. count body
    | CallFn f -> 1.0 +. count_fn f
    | External _ -> 1.0
  in
  count_fn name
