(** Control-flow graphs.

    Functions are arrays of basic blocks; block ids are array indices.
    Loops are *structured*: every loop has a unique latch block whose
    terminator carries the loop's header, exit, and a trip-count
    distribution sampled at loop entry.  This mirrors what LLVM's
    LoopSimplify guarantees (the paper's pass runs after it) and keeps
    both the interpreter and the placement analysis exact. *)

type block_id = int

type trip_count =
  | Static of int  (** statically known iteration count *)
  | Dynamic of { lo : int; hi : int }
      (** unknown at compile time; uniform in [lo, hi] at run time *)

type terminator =
  | Jump of block_id
  | Branch of { taken_prob : float; if_true : block_id; if_false : block_id }
      (** data-dependent two-way branch; [taken_prob] drives the VM *)
  | Latch of { header : block_id; exit : block_id; trips : trip_count; induction : bool }
      (** loop back edge; [induction] marks loops whose induction
          variable a pass may reuse for free iteration counting *)
  | Ret

type block = { id : block_id; mutable instrs : Instr.t list; mutable term : terminator }
type func = { fname : string; entry : block_id; blocks : block array }
type program = { funcs : (string * func) list; main : string }

(** [func_of_program p name] raises [Not_found] on unknown names. *)
val func_of_program : program -> string -> func

(** [validate p] checks structural invariants (targets in range, entry
    exists, latch headers/exits sane, main defined, called functions
    exist, probabilities in [0,1]); raises [Invalid_argument]. *)
val validate : program -> unit

(** [successors term] lists possible successor blocks. *)
val successors : terminator -> block_id list

(** [predecessors f] computes the predecessor lists of every block. *)
val predecessors : func -> block_id list array

(** [block_instruction_count b] sums {!Instr.instruction_weight}. *)
val block_instruction_count : block -> int

(** [func_instruction_count f] over all blocks. *)
val func_instruction_count : func -> int

(** [probe_count f] counts probe instructions. *)
val probe_count : func -> int

(** [program_probe_count p]. *)
val program_probe_count : program -> int

(** [map_blocks f fn] rebuilds a function with transformed blocks (the
    transformation must preserve ids). *)
val map_blocks : (block -> block) -> func -> func

(** [mean_trips tc] is the expected iteration count. *)
val mean_trips : trip_count -> float

val pp_func : Format.formatter -> func -> unit

(** Imperative CFG builder used by the AST lowerer and by tests. *)
module Builder : sig
  type t

  (** [create ~fname] starts a function; the entry block is block 0 and
      is current. *)
  val create : fname:string -> t

  (** [emit t i] appends an instruction to the current block. *)
  val emit : t -> Instr.t -> unit

  (** [new_block t] allocates a fresh block (terminator [Ret] until
      set) and returns its id without switching to it. *)
  val new_block : t -> block_id

  (** [switch_to t id] makes [id] the current block. *)
  val switch_to : t -> block_id -> unit

  val current : t -> block_id

  (** [terminate t term] sets the current block's terminator. *)
  val terminate : t -> terminator -> unit

  (** [set_term t id term] sets any block's terminator. *)
  val set_term : t -> block_id -> terminator -> unit

  (** [finish t] seals and returns the function. *)
  val finish : t -> func
end
