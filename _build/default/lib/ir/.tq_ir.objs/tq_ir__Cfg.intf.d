lib/ir/cfg.mli: Format Instr
