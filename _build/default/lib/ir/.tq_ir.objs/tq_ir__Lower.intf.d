lib/ir/lower.mli: Ast Cfg
