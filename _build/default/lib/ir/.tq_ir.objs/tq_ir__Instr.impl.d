lib/ir/instr.ml: Format
