lib/ir/analysis.mli: Cfg
