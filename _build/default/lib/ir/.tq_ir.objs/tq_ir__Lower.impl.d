lib/ir/lower.ml: Array Ast Cfg Instr List
