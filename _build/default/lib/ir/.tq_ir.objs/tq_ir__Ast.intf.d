lib/ir/ast.mli: Cfg
