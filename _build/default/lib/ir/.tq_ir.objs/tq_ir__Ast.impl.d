lib/ir/ast.ml: Cfg Hashtbl List
