lib/ir/cfg.ml: Array Format Instr List Printf
