lib/ir/instr.mli: Format
