lib/ir/analysis.ml: Array Cfg Hashtbl Instr List
