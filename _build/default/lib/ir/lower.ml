module B = Cfg.Builder

(* Emit a [work] run, interleaving operation kinds deterministically so
   costs spread along the block rather than clustering. *)
let emit_work b (w : Ast.work) =
  let remaining =
    [|
      (w.alu, Instr.Alu);
      (w.muls, Instr.Mul);
      (w.divs, Instr.Div);
      (w.loads, Instr.Load { miss_prob = w.miss_prob });
      (w.stores, Instr.Store);
    |]
  in
  let counts = Array.map fst remaining in
  let total = Array.fold_left ( + ) 0 counts in
  let emitted = Array.make (Array.length counts) 0 in
  for step = 1 to total do
    (* Pick the kind most behind its proportional schedule. *)
    let best = ref (-1) and best_deficit = ref neg_infinity in
    Array.iteri
      (fun k (count, _) ->
        if emitted.(k) < count then begin
          let expected = float_of_int count *. float_of_int step /. float_of_int total in
          let deficit = expected -. float_of_int emitted.(k) in
          if deficit > !best_deficit then begin
            best := k;
            best_deficit := deficit
          end
        end)
      remaining;
    let k = !best in
    emitted.(k) <- emitted.(k) + 1;
    B.emit b (snd remaining.(k))
  done

let rec lower_stmt b (ast : Ast.t) =
  match ast with
  | Work w -> emit_work b w
  | Seq ts -> List.iter (lower_stmt b) ts
  | CallFn f -> B.emit b (Instr.Call f)
  | External { name; cycles } -> B.emit b (Instr.External { name; cycles })
  | If { prob; then_; else_ } ->
      let then_entry = B.new_block b in
      let else_entry = B.new_block b in
      let join = B.new_block b in
      B.terminate b (Cfg.Branch { taken_prob = prob; if_true = then_entry; if_false = else_entry });
      B.switch_to b then_entry;
      lower_stmt b then_;
      B.terminate b (Cfg.Jump join);
      B.switch_to b else_entry;
      lower_stmt b else_;
      B.terminate b (Cfg.Jump join);
      B.switch_to b join
  | Loop { trips; induction; body } ->
      let header = B.new_block b in
      let exit = B.new_block b in
      B.terminate b (Cfg.Jump header);
      B.switch_to b header;
      lower_stmt b body;
      (* The block where the body ends is the latch. *)
      B.terminate b (Cfg.Latch { header; exit; trips; induction });
      B.switch_to b exit

let lower_func ~fname ast =
  let b = B.create ~fname in
  lower_stmt b ast;
  B.terminate b Cfg.Ret;
  B.finish b

let lower_program (src : Ast.program_src) =
  let funcs = List.map (fun (name, ast) -> (name, lower_func ~fname:name ast)) src.src_funcs in
  let p = { Cfg.funcs; main = src.src_main } in
  Cfg.validate p;
  p
