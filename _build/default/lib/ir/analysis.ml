(* Forward successors: latch->header back edges removed. *)
let forward_successors (b : Cfg.block) =
  match b.term with
  | Cfg.Latch { exit; _ } -> [ exit ]
  | term -> Cfg.successors term

let topo_order (f : Cfg.func) =
  let n = Array.length f.blocks in
  let state = Array.make n `White in
  let order = ref [] in
  let rec visit id =
    match state.(id) with
    | `Black -> ()
    | `Gray -> invalid_arg "Analysis.topo_order: forward CFG has a cycle"
    | `White ->
        state.(id) <- `Gray;
        List.iter visit (forward_successors f.blocks.(id));
        state.(id) <- `Black;
        order := id :: !order
  in
  visit f.entry;
  (* Include unreachable blocks at the end for totality. *)
  Array.iteri (fun id _ -> if state.(id) = `White then visit id) f.blocks;
  !order

type loop = {
  header : Cfg.block_id;
  latch : Cfg.block_id;
  exit : Cfg.block_id;
  body : Cfg.block_id list;
  trips : Cfg.trip_count;
  induction : bool;
  depth : int;
}

(* Natural loop of a back edge latch->header: header plus all blocks that
   reach the latch without passing through the header. *)
let natural_loop_body (f : Cfg.func) ~header ~latch =
  let preds = Cfg.predecessors f in
  let in_loop = Hashtbl.create 8 in
  Hashtbl.replace in_loop header ();
  let rec walk id =
    if not (Hashtbl.mem in_loop id) then begin
      Hashtbl.replace in_loop id ();
      List.iter walk preds.(id)
    end
  in
  walk latch;
  Array.to_list (Array.init (Array.length f.blocks) (fun i -> i))
  |> List.filter (Hashtbl.mem in_loop)

let loops (f : Cfg.func) =
  let raw =
    Array.to_list f.blocks
    |> List.filter_map (fun (b : Cfg.block) ->
           match b.term with
           | Cfg.Latch { header; exit; trips; induction } ->
               let body = natural_loop_body f ~header ~latch:b.id in
               Some { header; latch = b.id; exit; body; trips; induction; depth = 1 }
           | _ -> None)
  in
  (* Depth: number of loops whose body contains this loop's header. *)
  let with_depth =
    List.map
      (fun l ->
        let depth =
          List.length (List.filter (fun outer -> List.mem l.header outer.body) raw)
        in
        { l with depth })
      raw
  in
  List.sort (fun a b -> compare a.depth b.depth) with_depth

let loop_of_latch f latch = List.find_opt (fun l -> l.latch = latch) (loops f)
let is_self_loop l = l.header = l.latch

let expected_block_cycles (b : Cfg.block) =
  List.fold_left (fun acc i -> acc +. Instr.expected_cycles i) 0.0 b.instrs

let reachable (f : Cfg.func) =
  let n = Array.length f.blocks in
  let seen = Array.make n false in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter visit (Cfg.successors f.blocks.(id).term)
    end
  in
  visit f.entry;
  seen
