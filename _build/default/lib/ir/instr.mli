(** Instructions of the miniature IR.

    The IR stands in for LLVM IR in the probe-placement study.  It keeps
    exactly the properties the instrumentation problem depends on:

    - instructions have *varied, data-dependent cycle costs* (loads may
      miss), which is what makes instruction-counter-to-cycle translation
      inaccurate;
    - programs have basic blocks, branches, loops and calls, which is
      what makes probe placement non-trivial.

    Probes are also instructions: instrumentation passes rewrite programs
    by inserting them. *)

type probe =
  | Clock_probe
      (** TQ: read the hardware cycle counter; yield if a quantum has
          elapsed since the last yield *)
  | Counter_probe of { add : int }
      (** CI: instruction counter += [add]; on crossing the threshold,
          yield (plain CI) or check the clock first (CI-Cycles) *)
  | Loop_probe of { latch : int; period : int; counter_free : bool; cloned : bool }
      (** TQ loop instrumentation at the latch of loop [latch]: every
          [period] iterations invoke a clock probe.  [counter_free] means
          an induction variable was reused, so maintaining the iteration
          count is free. *)

type t =
  | Alu
  | Mul
  | Div
  | Load of { miss_prob : float }  (** per-site probability of a cache miss *)
  | Store
  | Call of string  (** call to another function in the program *)
  | External of { name : string; cycles : int }
      (** call into uninstrumented code with a known cost *)
  | Probe of probe

(** Cycle cost model (2.1 GHz core; DESIGN.md). *)
module Cost : sig
  val alu : int
  val mul : int
  val div : int
  val load_hit : int
  val load_miss : int
  val store : int
  val call_overhead : int

  (** RDTSC, partially hidden by out-of-order execution. *)
  val clock_probe : int

  val counter_probe : int

  (** Per-iteration counter upkeep (when no induction variable). *)
  val loop_probe_iter : int

  (** Coroutine yield + scheduler decision. *)
  val yield : int
end

(** [is_probe i] — true for instrumentation instructions. *)
val is_probe : t -> bool

(** [instruction_weight i] — how many "instructions" [i] contributes to
    an instruction counter (externals count their cycle estimate / 2,
    mirroring how CI charges unknown calls). *)
val instruction_weight : t -> int

(** [expected_cycles i] — mean cycle cost, used by static analyses. *)
val expected_cycles : t -> float

val pp : Format.formatter -> t -> unit
