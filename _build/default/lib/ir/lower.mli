(** AST to CFG lowering.

    Produces the structured CFGs the instrumentation passes consume:
    every [If] becomes a diamond, every [Loop] becomes
    preheader -> header ... latch -> exit with the back edge carried by a
    {!Cfg.Latch} terminator. *)

(** [lower_program src] lowers every function and validates the result. *)
val lower_program : Ast.program_src -> Cfg.program

(** [lower_func ~fname ast] lowers a single function body. *)
val lower_func : fname:string -> Ast.t -> Cfg.func
