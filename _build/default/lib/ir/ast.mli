(** Structured program ASTs.

    Benchmark programs are written in this small structured language and
    lowered to CFGs ({!Lower}).  The shape vocabulary — straight-line
    work, branches with probabilities, loops with static or dynamic trip
    counts, calls — spans the program structures that differentiate
    probe-placement strategies (tight inner loops, branchy code,
    irregular nests, call-heavy code). *)

type work = {
  alu : int;
  muls : int;
  divs : int;
  loads : int;
  miss_prob : float;  (** cache-miss probability of each load site *)
  stores : int;
}

type t =
  | Work of work  (** a straight-line run of instructions *)
  | Seq of t list
  | If of { prob : float; then_ : t; else_ : t }
  | Loop of { trips : Cfg.trip_count; induction : bool; body : t }
  | CallFn of string
  | External of { name : string; cycles : int }

type program_src = { src_funcs : (string * t) list; src_main : string }

(** Convenience constructors. *)

(** [work n] — [n] ALU instructions. *)
val work : int -> t

(** [mixed ~alu ~muls ~divs ~loads ~miss_prob ~stores ()]. *)
val mixed :
  ?alu:int -> ?muls:int -> ?divs:int -> ?loads:int -> ?miss_prob:float -> ?stores:int -> unit -> t

val seq : t list -> t
val if_ : prob:float -> t -> t -> t
val loop : ?induction:bool -> trips:Cfg.trip_count -> t -> t
val loop_n : ?induction:bool -> int -> t -> t
val loop_dyn : ?induction:bool -> lo:int -> hi:int -> t -> t

(** [instruction_count t program_src] — static instruction count with
    loops weighted by expected trips (callees included). *)
val expected_instruction_count : program_src -> string -> float
