type probe =
  | Clock_probe
  | Counter_probe of { add : int }
  | Loop_probe of { latch : int; period : int; counter_free : bool; cloned : bool }

type t =
  | Alu
  | Mul
  | Div
  | Load of { miss_prob : float }
  | Store
  | Call of string
  | External of { name : string; cycles : int }
  | Probe of probe

module Cost = struct
  let alu = 1
  let mul = 3
  let div = 18
  let load_hit = 4
  let load_miss = 40
  let store = 2
  let call_overhead = 2
  let clock_probe = 12
  let counter_probe = 2
  let loop_probe_iter = 1
  let yield = 80
end

let is_probe = function Probe _ -> true | _ -> false

let instruction_weight = function
  | Alu | Mul | Div | Load _ | Store -> 1
  | Call _ -> 1
  | External { cycles; _ } -> max 1 (cycles / 2)
  | Probe _ -> 0

let expected_cycles = function
  | Alu -> float_of_int Cost.alu
  | Mul -> float_of_int Cost.mul
  | Div -> float_of_int Cost.div
  | Load { miss_prob } ->
      ((1.0 -. miss_prob) *. float_of_int Cost.load_hit)
      +. (miss_prob *. float_of_int Cost.load_miss)
  | Store -> float_of_int Cost.store
  | Call _ -> float_of_int Cost.call_overhead
  | External { cycles; _ } -> float_of_int cycles
  | Probe Clock_probe -> float_of_int Cost.clock_probe
  | Probe (Counter_probe _) -> float_of_int Cost.counter_probe
  | Probe (Loop_probe { period; counter_free; _ }) ->
      let upkeep = if counter_free then 0.0 else float_of_int Cost.loop_probe_iter in
      upkeep +. (float_of_int Cost.clock_probe /. float_of_int (max 1 period))

let pp fmt = function
  | Alu -> Format.pp_print_string fmt "alu"
  | Mul -> Format.pp_print_string fmt "mul"
  | Div -> Format.pp_print_string fmt "div"
  | Load { miss_prob } -> Format.fprintf fmt "load[miss=%.2f]" miss_prob
  | Store -> Format.pp_print_string fmt "store"
  | Call f -> Format.fprintf fmt "call %s" f
  | External { name; cycles } -> Format.fprintf fmt "ext %s[%dcy]" name cycles
  | Probe Clock_probe -> Format.pp_print_string fmt "probe.clock"
  | Probe (Counter_probe { add }) -> Format.fprintf fmt "probe.counter[+%d]" add
  | Probe (Loop_probe { latch; period; counter_free; cloned }) ->
      Format.fprintf fmt "probe.loop[latch=%d,period=%d%s%s]" latch period
        (if counter_free then ",iv" else "")
        (if cloned then ",cloned" else "")
