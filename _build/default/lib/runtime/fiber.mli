(** Cooperative fibers on OCaml effects — the coroutine execution
    contexts of forced multitasking.

    A fiber wraps a thunk; [resume] runs it until it performs {!yield}
    or returns.  One-shot continuations mirror Boost coroutines'
    semantics: a fiber is resumed only from its scheduler, and yields
    only back to it. *)

type 'a t

type 'a status = Yielded | Done of 'a

val create : (unit -> 'a) -> 'a t

(** [resume t] runs until the next yield or completion; raises
    [Invalid_argument] if the fiber already finished.  Exceptions from
    the thunk propagate. *)
val resume : 'a t -> 'a status

(** [yield ()] suspends the calling fiber back to its resumer; raises
    [Invalid_argument] when called outside a fiber. *)
val yield : unit -> unit

val finished : 'a t -> bool

(** Number of times this fiber has been resumed. *)
val resumes : 'a t -> int
