type t = { free : int list Atomic.t; capacity : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mpsc_pool.create: capacity must be positive";
  { free = Atomic.make (List.init capacity (fun i -> i)); capacity }

let rec alloc t =
  match Atomic.get t.free with
  | [] -> None
  | buf :: rest as old ->
      if Atomic.compare_and_set t.free old rest then Some buf else alloc t

let release t buf =
  if buf < 0 || buf >= t.capacity then invalid_arg "Mpsc_pool.release: bad buffer id";
  let rec push () =
    let old = Atomic.get t.free in
    if not (Atomic.compare_and_set t.free old (buf :: old)) then push ()
  in
  push ()

let free_count t = List.length (Atomic.get t.free)
let capacity t = t.capacity
