(** Bounded lock-free single-producer single-consumer ring.

    The dispatcher-to-worker channel from the paper's implementation
    (Section 4): the dispatcher pushes requests, the worker's scheduler
    coroutine polls.  Exactly one producer thread and one consumer
    thread may use a given ring. *)

type 'a t

(** [create ~capacity] — capacity must be positive. *)
val create : capacity:int -> 'a t

(** [try_push t v] — false when full. *)
val try_push : 'a t -> 'a -> bool

(** [try_pop t] — [None] when empty. *)
val try_pop : 'a t -> 'a option

(** Approximate occupancy (exact when called by producer or consumer). *)
val length : 'a t -> int

val capacity : 'a t -> int
