open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

(* What one step of execution produces: either the fiber suspended at a
   yield (with the continuation to resume it), or it completed. *)
type 'a step = Suspended_at of (unit, 'a step) continuation | Completed of 'a

type 'a state = Ready of (unit -> 'a) | Suspended of (unit, 'a step) continuation | Finished
type 'a t = { mutable state : 'a state; mutable resumes : int }
type 'a status = Yielded | Done of 'a

let create f = { state = Ready f; resumes = 0 }

(* Deep handler: the whole computation runs under it, so resuming the
   continuation later still returns a ['a step]. *)
let handler : ('a, 'a step) Effect.Deep.handler =
  {
    retc = (fun v -> Completed v);
    exnc = raise;
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Yield -> Some (fun (k : (b, _) continuation) -> Suspended_at k)
        | _ -> None);
  }

let resume t =
  t.resumes <- t.resumes + 1;
  let step =
    match t.state with
    | Finished -> invalid_arg "Fiber.resume: fiber already finished"
    | Ready f -> match_with f () handler
    | Suspended k -> continue k ()
  in
  match step with
  | Suspended_at k ->
      t.state <- Suspended k;
      Yielded
  | Completed v ->
      t.state <- Finished;
      Done v

let yield () =
  try perform Yield
  with Effect.Unhandled Yield -> invalid_arg "Fiber.yield: called outside a fiber"

let finished t = match t.state with Finished -> true | Ready _ | Suspended _ -> false
let resumes t = t.resumes
