(** Multi-domain TQ executor: real parallelism.

    One dispatcher (the calling domain) load-balances jobs over worker
    domains through SPSC rings, using JSQ on the workers' atomic
    assigned/finished counters; each worker domain runs the forced-
    multitasking scheduler loop over its own fibers with a wall clock.

    Fidelity caveats (DESIGN.md): wall-clock quanta include OCaml GC
    pauses, and the per-domain minor heaps make this a demonstration of
    the mechanism rather than a microsecond-accurate testbed. *)

type stats = {
  completed : int;
  yields : int;  (** total across workers *)
  per_worker_finished : int array;
}

(** [run ~workers ~quantum_ns jobs] dispatches every job, waits for
    completion and tears the domains down.  Jobs must be thread-safe.
    [ring_capacity] bounds each dispatcher->worker ring (dispatch spins
    when full). *)
val run :
  ?workers:int -> ?quantum_ns:int -> ?ring_capacity:int -> (unit -> unit) array -> stats
