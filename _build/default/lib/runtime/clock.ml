type t = Wall | Virtual of int ref

let wall () = Wall
let virtual_ () = Virtual (ref 0)

let now_ns = function
  | Wall -> int_of_float (Unix.gettimeofday () *. 1e9)
  | Virtual r -> !r

let advance t ns =
  match t with
  | Wall -> invalid_arg "Clock.advance: wall clocks advance themselves"
  | Virtual r ->
      if ns < 0 then invalid_arg "Clock.advance: negative step";
      r := !r + ns

let is_virtual = function Wall -> false | Virtual _ -> true
