lib/runtime/spsc_ring.ml: Array Atomic
