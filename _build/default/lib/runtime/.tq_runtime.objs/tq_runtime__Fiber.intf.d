lib/runtime/fiber.mli:
