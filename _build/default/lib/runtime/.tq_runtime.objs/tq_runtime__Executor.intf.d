lib/runtime/executor.mli:
