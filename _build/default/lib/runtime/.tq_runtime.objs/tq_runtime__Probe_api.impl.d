lib/runtime/probe_api.ml: Clock Domain Fiber
