lib/runtime/task_worker.ml: Clock Fiber Fun Probe_api Tq_util
