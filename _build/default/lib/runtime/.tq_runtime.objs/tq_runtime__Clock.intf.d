lib/runtime/clock.mli:
