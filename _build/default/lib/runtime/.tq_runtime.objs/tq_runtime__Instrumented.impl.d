lib/runtime/instrumented.ml: Array List Probe_api Unix
