lib/runtime/mpsc_pool.mli:
