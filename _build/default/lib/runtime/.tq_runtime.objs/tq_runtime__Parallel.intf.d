lib/runtime/parallel.mli:
