lib/runtime/executor.ml: Array Clock Task_worker
