lib/runtime/fiber.ml: Effect
