lib/runtime/spsc_ring.mli:
