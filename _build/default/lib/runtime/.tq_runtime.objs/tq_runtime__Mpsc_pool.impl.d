lib/runtime/mpsc_pool.ml: Atomic List
