lib/runtime/instrumented.mli:
