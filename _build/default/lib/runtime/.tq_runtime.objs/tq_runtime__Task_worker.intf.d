lib/runtime/task_worker.mli: Clock
