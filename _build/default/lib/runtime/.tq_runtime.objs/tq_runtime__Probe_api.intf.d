lib/runtime/probe_api.mli: Clock
