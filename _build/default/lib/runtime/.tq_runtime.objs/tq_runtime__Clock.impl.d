lib/runtime/clock.ml: Unix
