lib/runtime/parallel.ml: Array Atomic Clock Domain Spsc_ring Task_worker
