(** Clocks for the runtime's probes.

    [wall] reads real time (the RDTSC stand-in).  [virtual_] is a
    manually advanced counter: instrumented code credits its own cost,
    which makes quantum behaviour deterministic and immune to GC pauses
    — the mode used by tests (see DESIGN.md fidelity caveats). *)

type t

val wall : unit -> t
val virtual_ : unit -> t
val now_ns : t -> int

(** [advance t ns] — virtual clocks only; raises [Invalid_argument] on a
    wall clock. *)
val advance : t -> int -> unit

val is_virtual : t -> bool
