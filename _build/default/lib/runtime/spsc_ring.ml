(* Each cell is its own Atomic so value publication is ordered with the
   index updates under the OCaml memory model. *)
type 'a t = {
  cells : 'a option Atomic.t array;
  capacity : int;
  head : int Atomic.t;  (** consumer cursor *)
  tail : int Atomic.t;  (** producer cursor *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc_ring.create: capacity must be positive";
  {
    cells = Array.init capacity (fun _ -> Atomic.make None);
    capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let try_push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= t.capacity then false
  else begin
    Atomic.set t.cells.(tail mod t.capacity) (Some v);
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head >= tail then None
  else begin
    let cell = t.cells.(head mod t.capacity) in
    let v = Atomic.get cell in
    Atomic.set cell None;
    Atomic.set t.head (head + 1);
    v
  end

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let capacity t = t.capacity
