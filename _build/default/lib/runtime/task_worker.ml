module Deque = Tq_util.Ring_deque

type task = { task_id : int; work : unit -> unit }

type running = { task : task; fiber : unit Fiber.t; mutable quanta : int }

type t = {
  ctx : Probe_api.t;
  clock : Clock.t;
  queue : running Deque.t;
  on_finish : task -> unit;
  mutable assigned : int;
  mutable finished : int;
  mutable current_quanta : int;
}

let create ~clock ~quantum_ns ~on_finish () =
  {
    ctx = Probe_api.create ~clock ~quantum_ns;
    clock;
    queue = Deque.create ();
    on_finish;
    assigned = 0;
    finished = 0;
    current_quanta = 0;
  }

let submit t task =
  t.assigned <- t.assigned + 1;
  Deque.push_back t.queue { task; fiber = Fiber.create task.work; quanta = 0 }

let run_slice t =
  match Deque.pop_front t.queue with
  | None -> false
  | Some running -> begin
      Probe_api.install t.ctx;
      Probe_api.start_quantum t.ctx;
      let status = Fun.protect ~finally:Probe_api.uninstall (fun () -> Fiber.resume running.fiber) in
      running.quanta <- running.quanta + 1;
      t.current_quanta <- t.current_quanta + 1;
      (match status with
      | Fiber.Yielded -> Deque.push_back t.queue running
      | Fiber.Done () ->
          t.current_quanta <- t.current_quanta - running.quanta;
          t.finished <- t.finished + 1;
          t.on_finish running.task);
      true
    end

let run_until_idle t =
  while run_slice t do
    ()
  done

let queue_length t = Deque.length t.queue
let unfinished t = t.assigned - t.finished
let finished_count t = t.finished
let current_quanta t = t.current_quanta
let total_yields t = Probe_api.yields_taken t.ctx
let clock t = t.clock
