(** Multi-producer single-consumer buffer pool.

    The paper's RX-buffer pool (Section 4): the dispatcher (single
    consumer) allocates packet buffers; worker cores (multiple
    producers) release parsed buffers back independently, without
    locking the dispatcher.  Buffers are identified by index into a
    caller-owned arena.

    Lock-free Treiber stack over immutable list nodes — safe under
    OCaml's GC (no ABA hazard). *)

type t

(** [create ~capacity] — all [capacity] buffers start free. *)
val create : capacity:int -> t

(** [alloc t] — take a free buffer; [None] when exhausted.  Called by
    the single consumer (also safe, if slower, from multiple threads). *)
val alloc : t -> int option

(** [release t buf] — return a buffer; callable concurrently from any
    worker domain.  Raises [Invalid_argument] for out-of-range ids. *)
val release : t -> int -> unit

(** Free buffers right now (racy under concurrency; exact when quiesced). *)
val free_count : t -> int

val capacity : t -> int
