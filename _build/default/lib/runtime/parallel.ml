type stats = { completed : int; yields : int; per_worker_finished : int array }

type worker_handle = {
  ring : (unit -> unit) Spsc_ring.t;
  assigned : int Atomic.t;  (** written by dispatcher *)
  finished : int Atomic.t;  (** written by worker *)
  yields : int Atomic.t;
}

let worker_loop handle ~quantum_ns ~stop =
  let clock = Clock.wall () in
  let worker =
    Task_worker.create ~clock ~quantum_ns
      ~on_finish:(fun _ -> Atomic.incr handle.finished)
      ()
  in
  let next_id = ref 0 in
  let drain_ring () =
    let rec go () =
      match Spsc_ring.try_pop handle.ring with
      | Some work ->
          incr next_id;
          Task_worker.submit worker { Task_worker.task_id = !next_id; work };
          go ()
      | None -> ()
    in
    go ()
  in
  let rec loop () =
    drain_ring ();
    let ran = Task_worker.run_slice worker in
    if ran then loop ()
    else if Atomic.get stop && Spsc_ring.length handle.ring = 0 then ()
    else begin
      Domain.cpu_relax ();
      loop ()
    end
  in
  loop ();
  Atomic.set handle.yields (Task_worker.total_yields worker)

let run ?(workers = 4) ?(quantum_ns = 100_000) ?(ring_capacity = 256) jobs =
  if workers < 1 then invalid_arg "Parallel.run: need at least one worker";
  let stop = Atomic.make false in
  let handles =
    Array.init workers (fun _ ->
        {
          ring = Spsc_ring.create ~capacity:ring_capacity;
          assigned = Atomic.make 0;
          finished = Atomic.make 0;
          yields = Atomic.make 0;
        })
  in
  let domains =
    Array.map
      (fun handle -> Domain.spawn (fun () -> worker_loop handle ~quantum_ns ~stop))
      handles
  in
  (* Dispatcher: JSQ over atomic unfinished counts. *)
  let unfinished h = Atomic.get h.assigned - Atomic.get h.finished in
  Array.iter
    (fun job ->
      let best = ref 0 in
      Array.iteri (fun i h -> if unfinished h < unfinished handles.(!best) then best := i) handles;
      let handle = handles.(!best) in
      while not (Spsc_ring.try_push handle.ring job) do
        Domain.cpu_relax ()
      done;
      Atomic.incr handle.assigned)
    jobs;
  Atomic.set stop true;
  Array.iter Domain.join domains;
  {
    completed = Array.fold_left (fun acc h -> acc + Atomic.get h.finished) 0 handles;
    yields = Array.fold_left (fun acc h -> acc + Atomic.get h.yields) 0 handles;
    per_worker_finished = Array.map (fun h -> Atomic.get h.finished) handles;
  }
