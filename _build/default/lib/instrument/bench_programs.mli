open Tq_ir
(** The instrumentation benchmark suite.

    Twenty-seven synthetic programs named after — and structurally
    mimicking — the SPLASH-2, PARSEC and Phoenix kernels the paper uses
    for Table 3 (see DESIGN.md substitutions).  Structure, not exact
    code, is what differentiates probe-placement strategies: tight inner
    loop nests (matrix-multiply, lu), branchy scanning loops
    (string-match, volrend), pointer-chasing with frequent misses
    (canneal), call-heavy traversal (barnes, raytrace), and so on.

    Also provides [rocksdb_get] / [rocksdb_scan], the ~2 us and ~675 us
    jobs discussed in Sections 3.1 and 5. *)

type named = { prog_name : string; source : Ast.program_src }

(** All Table 3 programs, in paper order. *)
val all : named list

val find : string -> named option

(** A ~2 us point-lookup job (hashing, memtable walk, block scan). *)
val rocksdb_get : named

(** A ~675 us range-scan job (large merge loop). *)
val rocksdb_scan : named

(** [lowered p] — the program lowered to CFG and validated. *)
val lowered : named -> Cfg.program
