open Tq_ir
(** Instruction-counter instrumentation (the "Compiler Interrupt"
    baseline, cf. Basu et al.).

    Inserts a counter probe at the end of *every basic block*, adding the
    block's instruction count — the density required to keep the counter
    correct along all execution paths, and the reason this approach pays
    a large probing overhead on block-rich code.  Whether the threshold
    crossing yields directly (CI) or first checks the physical clock
    (CI-Cycles) is a VM-side configuration ({!Vm.config.ci_check_clock});
    the placement is identical, as in the paper. *)

(** [instrument p] returns a new program with counter probes added. *)
val instrument : Cfg.program -> Cfg.program
