open Tq_ir
let instrument_block (b : Cfg.block) =
  let add = Cfg.block_instruction_count b in
  if add = 0 then b
  else { b with instrs = b.instrs @ [ Instr.Probe (Instr.Counter_probe { add }) ] }

let instrument (p : Cfg.program) =
  let funcs =
    List.map (fun (name, f) -> (name, Cfg.map_blocks instrument_block f)) p.funcs
  in
  let p' = { p with funcs } in
  Cfg.validate p';
  p'
