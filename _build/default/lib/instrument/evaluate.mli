(** Table 3 evaluation: probing overhead and yield-timing accuracy of
    CI, CI-Cycles and TQ instrumentation over the benchmark suite. *)

type row = {
  name : string;
  base_cycles : int;
  ci_overhead_pct : float;
  ci_cycles_overhead_pct : float;
  tq_overhead_pct : float;
  ci_mae_ns : float;
  ci_cycles_mae_ns : float;
  tq_mae_ns : float;
  ci_static_probes : int;  (** probe instructions inserted *)
  tq_static_probes : int;
  ci_dynamic_probes : int;  (** probe executions at run time *)
  tq_dynamic_probes : int;
}

(** [evaluate ?quantum_us ?bound ?seed named] measures one program:
    overhead with yielding disabled (paired control flow), MAE at the
    target quantum (default 2 us, as in Table 3). *)
val evaluate :
  ?quantum_us:float -> ?bound:int -> ?seed:int64 -> Bench_programs.named -> row

(** [table3 ?quantum_us ?bound ?seed ()] evaluates the whole suite. *)
val table3 : ?quantum_us:float -> ?bound:int -> ?seed:int64 -> unit -> row list

(** Column means, as the paper's last row. *)
type means = {
  mean_ci_overhead : float;
  mean_ci_cycles_overhead : float;
  mean_tq_overhead : float;
  mean_ci_mae : float;
  mean_ci_cycles_mae : float;
  mean_tq_mae : float;
}

val means : row list -> means
