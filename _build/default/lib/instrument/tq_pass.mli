open Tq_ir
(** TQ's probe-placement pass (Section 3.1 of the paper).

    Inserts sparse physical-clock probes such that the longest
    *uninstrumented* execution path between two probe opportunities is
    bounded by [bound] instructions:

    - Acyclic code: a longest-distance-since-last-probe dataflow over the
      forward CFG inserts a clock probe wherever the bound would be
      exceeded.
    - Loops: when the trip count cannot be deduced statically (or the
      total statically-known work exceeds the bound), the latch gets a
      loop probe that invokes the clock check every
      [bound / longest-iteration-path] iterations.  If the loop has an
      induction variable the iteration counter is free; single-block
      self-loops are cloned so that entries with a runtime trip count
      under the period bypass instrumentation entirely.
    - Calls: instrumented callees are summarized by their worst-case
      probe-free entry prefix / exit suffix; calls to small or
      uninstrumented functions contribute their whole length; externals
      contribute an estimated instruction cost.

    Unlike the instruction-counter approach, probes may sit anywhere
    (physical clocks need no bookkeeping correctness), so the pass places
    them far apart — the source of its low overhead. *)

type config = {
  bound : int;  (** max instructions between probe opportunities *)
  non_reentrant : string list;
      (** functions that must not yield (Section 6's reentrancy hazard):
          no probes are placed inside them; callers treat them as opaque
          uninstrumented cost *)
}

val default_config : config

(** [instrument ?config p] — functions are processed callee-first (the
    call graph must be acyclic, which [lower_program] guarantees for our
    sources). *)
val instrument : ?config:config -> Cfg.program -> Cfg.program

(** Per-function summary used for interprocedural placement; exposed for
    tests. *)
type summary = {
  max_prefix : int;  (** worst probe-free distance from entry to a probe or return *)
  max_suffix : int;  (** worst probe-free distance from the last probe to return *)
  always_probed : bool;  (** every path through the function hits a probe *)
}

val summarize : (string * summary) list -> Cfg.func -> summary
