open Tq_ir
type row = {
  name : string;
  base_cycles : int;
  ci_overhead_pct : float;
  ci_cycles_overhead_pct : float;
  tq_overhead_pct : float;
  ci_mae_ns : float;
  ci_cycles_mae_ns : float;
  tq_mae_ns : float;
  ci_static_probes : int;
  tq_static_probes : int;
  ci_dynamic_probes : int;
  tq_dynamic_probes : int;
}

let quantum_cycles_of_us us =
  Tq_util.Time_unit.ns_to_cycles (Tq_util.Time_unit.us us)

let evaluate ?(quantum_us = 2.0) ?(bound = Tq_pass.default_config.bound) ?(seed = 7L)
    (named : Bench_programs.named) =
  let base_prog = Bench_programs.lowered named in
  let ci_prog = Ci_pass.instrument base_prog in
  let tq_prog = Tq_pass.instrument ~config:{ Tq_pass.bound; non_reentrant = [] } base_prog in
  let quantum = quantum_cycles_of_us quantum_us in
  let off =
    { Vm.default_config with quantum_cycles = max_int; seed; ci_check_clock = false }
  in
  let on ci_check_clock =
    { Vm.default_config with quantum_cycles = quantum; seed; ci_check_clock }
  in
  let baseline = Vm.run off base_prog in
  let ci_on = Vm.run (on false) ci_prog in
  let ci_cycles_on = Vm.run (on true) ci_prog in
  let tq_on = Vm.run (on false) tq_prog in
  let mae r = Vm.mean_abs_error_ns ~quantum_cycles:quantum r in
  (* Probing overhead: instrumented runtime at the target quantum, with
     the yield costs themselves factored out — probes and gated clock
     reads remain, matching the paper's "instrumented GET takes 60%
     longer" measurement. *)
  let overhead (r : Vm.result) =
    let adjusted = r.total_cycles - (r.yields * Tq_ir.Instr.Cost.yield) in
    100.0
    *. (float_of_int adjusted -. float_of_int baseline.total_cycles)
    /. float_of_int baseline.total_cycles
  in
  {
    name = named.prog_name;
    base_cycles = baseline.total_cycles;
    ci_overhead_pct = overhead ci_on;
    ci_cycles_overhead_pct = overhead ci_cycles_on;
    tq_overhead_pct = overhead tq_on;
    ci_mae_ns = mae ci_on;
    ci_cycles_mae_ns = mae ci_cycles_on;
    tq_mae_ns = mae tq_on;
    ci_static_probes = Cfg.program_probe_count ci_prog;
    tq_static_probes = Cfg.program_probe_count tq_prog;
    ci_dynamic_probes = ci_on.probe_executions;
    tq_dynamic_probes = tq_on.probe_executions;
  }

let table3 ?quantum_us ?bound ?seed () =
  List.map (fun p -> evaluate ?quantum_us ?bound ?seed p) Bench_programs.all

type means = {
  mean_ci_overhead : float;
  mean_ci_cycles_overhead : float;
  mean_tq_overhead : float;
  mean_ci_mae : float;
  mean_ci_cycles_mae : float;
  mean_tq_mae : float;
}

let means rows =
  let n = float_of_int (List.length rows) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  {
    mean_ci_overhead = sum (fun r -> r.ci_overhead_pct) /. n;
    mean_ci_cycles_overhead = sum (fun r -> r.ci_cycles_overhead_pct) /. n;
    mean_tq_overhead = sum (fun r -> r.tq_overhead_pct) /. n;
    mean_ci_mae = sum (fun r -> r.ci_mae_ns) /. n;
    mean_ci_cycles_mae = sum (fun r -> r.ci_cycles_mae_ns) /. n;
    mean_tq_mae = sum (fun r -> r.tq_mae_ns) /. n;
  }
