lib/instrument/bench_programs.ml: Ast List Lower Tq_ir
