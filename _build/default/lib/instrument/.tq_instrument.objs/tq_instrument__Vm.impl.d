lib/instrument/vm.ml: Array Cfg Float Hashtbl Instr List Option Tq_ir Tq_util
