lib/instrument/tq_pass.mli: Cfg Tq_ir
