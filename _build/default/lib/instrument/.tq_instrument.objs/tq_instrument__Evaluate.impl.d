lib/instrument/evaluate.ml: Bench_programs Cfg Ci_pass List Tq_ir Tq_pass Tq_util Vm
