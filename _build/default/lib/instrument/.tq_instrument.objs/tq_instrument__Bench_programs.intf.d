lib/instrument/bench_programs.mli: Ast Cfg Tq_ir
