lib/instrument/ci_pass.mli: Cfg Tq_ir
