lib/instrument/evaluate.mli: Bench_programs
