lib/instrument/ci_pass.ml: Cfg Instr List Tq_ir
