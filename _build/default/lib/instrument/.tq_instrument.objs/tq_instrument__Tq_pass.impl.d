lib/instrument/tq_pass.ml: Analysis Array Cfg Float Hashtbl Instr List Tq_ir
