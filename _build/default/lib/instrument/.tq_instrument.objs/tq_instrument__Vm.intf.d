lib/instrument/vm.mli: Cfg Tq_ir
