open Tq_ir
open Ast

type named = { prog_name : string; source : Ast.program_src }

let prog ?(funcs = []) name body =
  { prog_name = name; source = { src_funcs = ("main", body) :: funcs; src_main = "main" } }

(* ---- SPLASH-2 style: scientific loop nests ---- *)

let water_nsquared =
  (* O(n^2) pairwise interactions: double nest, fp-heavy body. *)
  prog "water-nsquared"
    (loop_n ~induction:true 180
       (loop_n ~induction:true 180
          (mixed ~alu:4 ~muls:3 ~divs:0 ~loads:2 ~miss_prob:0.03 ~stores:1 ())))

let water_spatial =
  (* Cell lists: triple nest with a guard branch. *)
  prog "water-spatial"
    (loop_n ~induction:true 40
       (loop_n ~induction:true 40
          (seq
             [
               mixed ~alu:3 ~loads:2 ~miss_prob:0.05 ();
               if_ ~prob:0.4
                 (loop_dyn ~lo:2 ~hi:10 (mixed ~alu:5 ~muls:2 ~loads:1 ~stores:1 ()))
                 (work 3);
             ])))

let ocean_cp =
  (* Regular grid sweeps: contiguous accesses, low miss rate. *)
  prog "ocean-cp"
    (loop_n ~induction:true 400
       (loop_n ~induction:true 60 (mixed ~alu:5 ~muls:1 ~loads:3 ~miss_prob:0.02 ~stores:1 ())))

let ocean_ncp =
  (* Non-contiguous partitions: same sweeps, worse locality. *)
  prog "ocean-ncp"
    (loop_n ~induction:true 400
       (loop_n ~induction:true 60 (mixed ~alu:5 ~muls:1 ~loads:3 ~miss_prob:0.20 ~stores:1 ())))

let barnes =
  (* Tree traversal: call-heavy with branchy descent. *)
  let descend =
    seq
      [
        mixed ~alu:4 ~loads:3 ~miss_prob:0.12 ();
        if_ ~prob:0.5
          (seq [ CallFn "force"; mixed ~alu:2 ~loads:1 () ])
          (mixed ~alu:6 ~muls:2 ());
      ]
  in
  prog
    ~funcs:[ ("force", seq [ mixed ~alu:8 ~muls:4 ~divs:1 ~loads:2 ~miss_prob:0.05 () ]) ]
    "barnes"
    (loop_dyn ~lo:2500 ~hi:4500 descend)

let volrend =
  (* Ray casting: deep branch ladders, early exits. *)
  prog "volrend"
    (loop_dyn ~lo:2000 ~hi:3000
       (seq
          [
            mixed ~alu:2 ~loads:2 ~miss_prob:0.08 ();
            if_ ~prob:0.3
              (if_ ~prob:0.5
                 (mixed ~alu:10 ~muls:3 ~loads:2 ())
                 (mixed ~alu:4 ~loads:1 ~stores:1 ()))
              (if_ ~prob:0.2 (mixed ~alu:14 ~muls:5 ~divs:1 ()) (work 2));
          ]))

let fmm =
  (* Multipole: nested dynamic loops with helper calls. *)
  prog
    ~funcs:
      [
        ("interact", mixed ~alu:6 ~muls:4 ~divs:1 ~loads:2 ~miss_prob:0.04 ());
        ("shift", mixed ~alu:4 ~muls:2 ~loads:1 ());
      ]
    "fmm"
    (loop_dyn ~lo:120 ~hi:220
       (seq
          [
            CallFn "shift";
            loop_dyn ~lo:10 ~hi:40 (seq [ CallFn "interact"; work 2 ]);
          ]))

let raytrace =
  (* Per-ray loop calling intersection tests. *)
  prog
    ~funcs:
      [
        ( "intersect",
          seq
            [
              mixed ~alu:5 ~muls:3 ~loads:3 ~miss_prob:0.10 ();
              if_ ~prob:0.25 (mixed ~alu:6 ~divs:1 ()) (work 1);
            ] );
      ]
    "raytrace"
    (loop_dyn ~lo:1500 ~hi:2500
       (seq [ work 3; loop_dyn ~lo:2 ~hi:8 (CallFn "intersect"); mixed ~stores:1 ~alu:1 () ]))

let radiosity =
  (* Irregular worklist: branches choosing very different path lengths. *)
  prog "radiosity"
    (loop_dyn ~lo:2200 ~hi:3800
       (if_ ~prob:0.15
          (loop_dyn ~lo:5 ~hi:25 (mixed ~alu:6 ~muls:2 ~loads:2 ~miss_prob:0.15 ~stores:1 ()))
          (if_ ~prob:0.5
             (mixed ~alu:8 ~loads:2 ~miss_prob:0.05 ())
             (mixed ~alu:3 ~loads:1 ~stores:1 ()))))

let radix =
  (* Counting sort passes: two sequential flat loops, repeated. *)
  prog "radix"
    (loop_n 4
       (seq
          [
            loop_n ~induction:true 9000 (mixed ~alu:2 ~loads:1 ~miss_prob:0.06 ~stores:1 ());
            loop_n ~induction:true 9000 (mixed ~alu:3 ~loads:2 ~miss_prob:0.06 ~stores:1 ());
          ]))

let fft =
  (* Butterfly stages: log-depth outer loop, strided inner accesses. *)
  prog "fft"
    (loop_n 14
       (loop_n ~induction:true 2800
          (mixed ~alu:4 ~muls:4 ~loads:2 ~miss_prob:0.12 ~stores:2 ())))

let lu_contiguous =
  prog "lu-c"
    (loop_n ~induction:true 55
       (loop_n ~induction:true 55
          (seq
             [
               mixed ~alu:2 ~loads:1 ~miss_prob:0.02 ();
               loop_dyn ~induction:true ~lo:5 ~hi:55 (mixed ~alu:2 ~muls:1 ~loads:1 ~miss_prob:0.02 ~stores:1 ());
             ])))

let lu_noncontiguous =
  prog "lu-nc"
    (loop_n ~induction:true 55
       (loop_n ~induction:true 55
          (seq
             [
               mixed ~alu:2 ~loads:1 ~miss_prob:0.18 ();
               loop_dyn ~induction:true ~lo:5 ~hi:55 (mixed ~alu:2 ~muls:1 ~loads:1 ~miss_prob:0.18 ~stores:1 ());
             ])))

let cholesky =
  (* Sparse factorization: irregular nests, data-dependent trip counts. *)
  prog
    ~funcs:[ ("update", mixed ~alu:3 ~muls:2 ~loads:2 ~miss_prob:0.10 ~stores:1 ()) ]
    "cholesky"
    (loop_dyn ~lo:150 ~hi:300
       (seq
          [
            mixed ~alu:4 ~divs:1 ~loads:1 ();
            loop_dyn ~lo:1 ~hi:40
              (if_ ~prob:0.6 (CallFn "update") (mixed ~alu:2 ~loads:1 ()));
          ]))

(* ---- Phoenix style: map-reduce kernels ---- *)

let reverse_index =
  prog "reverse-index"
    (loop_dyn ~lo:1800 ~hi:2600
       (seq
          [
            mixed ~alu:3 ~loads:2 ~miss_prob:0.15 ();
            if_ ~prob:0.35
              (loop_dyn ~lo:2 ~hi:12 (mixed ~alu:4 ~loads:1 ~stores:2 ~miss_prob:0.10 ()))
              (work 2);
          ]))

let histogram =
  (* The classic single flat loop with a tiny body. *)
  prog "histogram"
    (loop_n ~induction:true 36_000 (mixed ~alu:2 ~loads:1 ~miss_prob:0.04 ~stores:1 ()))

let kmeans =
  prog "kmeans"
    (loop_n 12
       (loop_n ~induction:true 900
          (seq
             [
               loop_n ~induction:true 8 (mixed ~alu:3 ~muls:2 ~loads:1 ~miss_prob:0.03 ());
               if_ ~prob:0.3 (mixed ~stores:1 ~alu:2 ()) (work 1);
             ])))

let pca =
  prog "pca"
    (seq
       [
         loop_n ~induction:true 220
           (loop_n ~induction:true 220 (mixed ~alu:2 ~muls:1 ~loads:2 ~miss_prob:0.05 ()));
         loop_n ~induction:true 220 (mixed ~alu:4 ~divs:1 ~loads:1 ~stores:1 ());
       ])

let matrix_multiply =
  prog "matrix-multiply"
    (loop_n ~induction:true 44
       (loop_n ~induction:true 44
          (loop_n ~induction:true 44
             (mixed ~alu:2 ~muls:1 ~loads:2 ~miss_prob:0.04 ~stores:1 ()))))

let string_match =
  (* Byte-scanning loop with rare match work: branch-dominated. *)
  prog "string-match"
    (loop_dyn ~lo:7000 ~hi:11_000
       (if_ ~prob:0.08
          (loop_dyn ~lo:4 ~hi:16 (mixed ~alu:4 ~loads:1 ~miss_prob:0.02 ()))
          (mixed ~alu:2 ~loads:1 ~miss_prob:0.02 ())))

let linear_regression =
  prog "linear-regression"
    (loop_n ~induction:true 22_000 (mixed ~alu:4 ~muls:2 ~loads:1 ~miss_prob:0.03 ()))

let word_count =
  prog
    ~funcs:[ ("hash-insert", mixed ~alu:5 ~loads:2 ~miss_prob:0.12 ~stores:1 ()) ]
    "word-count"
    (loop_dyn ~lo:5000 ~hi:8000
       (seq
          [
            mixed ~alu:2 ~loads:1 ~miss_prob:0.03 ();
            if_ ~prob:0.18 (CallFn "hash-insert") (work 1);
          ]))

(* ---- PARSEC style ---- *)

let blackscholes =
  (* Per-option pricing: flat loop, div/mul heavy (high CPI). *)
  prog
    ~funcs:[ ("cndf", mixed ~alu:6 ~muls:4 ~divs:2 ()) ]
    "blackscholes"
    (loop_n ~induction:true 1400
       (seq [ mixed ~alu:4 ~muls:3 ~divs:1 ~loads:2 ~miss_prob:0.02 (); CallFn "cndf"; CallFn "cndf"; mixed ~stores:1 ~alu:1 () ]))

let fluidanimate =
  prog "fluidanimate"
    (loop_n ~induction:true 28
       (loop_n ~induction:true 28
          (loop_dyn ~lo:2 ~hi:14
             (seq
                [
                  mixed ~alu:4 ~muls:2 ~loads:3 ~miss_prob:0.08 ();
                  if_ ~prob:0.5 (mixed ~alu:4 ~divs:1 ~stores:1 ()) (work 2);
                ]))))

let swaptions =
  prog "swaptions"
    (loop_dyn ~lo:90 ~hi:140
       (loop_n ~induction:true 110
          (mixed ~alu:5 ~muls:3 ~divs:1 ~loads:2 ~miss_prob:0.04 ~stores:1 ())))

let canneal =
  (* Pointer chasing over a huge net list: miss-dominated self-loop. *)
  prog "canneal"
    (loop_dyn ~lo:9000 ~hi:13_000 (mixed ~alu:2 ~loads:2 ~miss_prob:0.45 ~stores:1 ()))

let streamcluster =
  prog "streamcluster"
    (loop_dyn ~lo:500 ~hi:900
       (loop_n ~induction:true 24 (mixed ~alu:3 ~muls:2 ~loads:2 ~miss_prob:0.06 ())))

let all =
  [
    water_nsquared;
    water_spatial;
    ocean_cp;
    ocean_ncp;
    barnes;
    volrend;
    fmm;
    raytrace;
    radiosity;
    radix;
    fft;
    lu_contiguous;
    lu_noncontiguous;
    cholesky;
    reverse_index;
    histogram;
    kmeans;
    pca;
    matrix_multiply;
    string_match;
    linear_regression;
    word_count;
    blackscholes;
    fluidanimate;
    swaptions;
    canneal;
    streamcluster;
  ]

let find name = List.find_opt (fun p -> p.prog_name = name) all

let rocksdb_get =
  (* ~2us at 2.1 GHz: key hash, memtable skip-list walk, filter check,
     data-block scan, checksum. *)
  prog
    ~funcs:
      [
        ("hash-key", mixed ~alu:60 ~muls:6 ~loads:4 ~miss_prob:0.02 ());
        ( "memtable-walk",
          loop_dyn ~lo:20 ~hi:40
            (seq
               [
                 mixed ~alu:3 ~loads:2 ~miss_prob:0.25 ();
                 if_ ~prob:0.3 (work 4) (work 1);
               ]) );
        ( "filter-check",
          loop_dyn ~induction:true ~lo:30 ~hi:60 (mixed ~alu:3 ~loads:1 ~miss_prob:0.05 ()) );
        ( "block-scan",
          loop_dyn ~induction:true ~lo:160 ~hi:260 (mixed ~alu:3 ~loads:2 ~miss_prob:0.12 ()) );
      ]
    "rocksdb-get"
    (seq
       [
         CallFn "hash-key";
         CallFn "memtable-walk";
         CallFn "filter-check";
         if_ ~prob:0.7 (CallFn "block-scan") (work 10);
         External { name = "checksum"; cycles = 120 };
         mixed ~alu:8 ~stores:2 ();
       ])

let rocksdb_scan =
  (* ~675us: long merge loop over sorted runs. *)
  prog
    ~funcs:
      [
        ( "merge-step",
          seq
            [
              mixed ~alu:4 ~loads:3 ~miss_prob:0.10 ();
              if_ ~prob:0.4 (mixed ~alu:5 ~loads:1 ~stores:1 ()) (work 2);
            ] );
      ]
    "rocksdb-scan"
    (loop_dyn ~lo:38_500 ~hi:40_500 (CallFn "merge-step"))

let lowered p = Lower.lower_program p.source
