open Tq_ir

type config = { bound : int; non_reentrant : string list }

let default_config = { bound = 400; non_reentrant = [] }

type summary = { max_prefix : int; max_suffix : int; always_probed : bool }

let trips_lo = function Cfg.Static k -> k | Cfg.Dynamic { lo; _ } -> lo
let trips_hi = function Cfg.Static k -> k | Cfg.Dynamic { hi; _ } -> hi

(* ------------------------------------------------------------------ *)
(* Instruction contribution model                                      *)
(* ------------------------------------------------------------------ *)

(* How one instruction affects the distance-since-last-probe scan.
   [Opportunity] is a *reliable* probe opportunity (executes a clock
   check whenever control passes it); [Gate prefix suffix] is a call to
   an always-probed callee: its first probe is at most [prefix]
   instructions in, and at most [suffix] run after its last. *)
type effect_ = Step of int | Opportunity | Gate of { prefix : int; suffix : int }

(* A loop probe is only a reliable opportunity for the *enclosing*
   context when it is certain to fire on every entry of its loop, i.e.
   when the minimum trip count reaches the period.  [loop_trips] maps a
   latch to its trip-count distribution. *)
let instr_effect ?(loop_trips = fun _ -> None) summaries (i : Instr.t) =
  match i with
  | Instr.Probe Instr.Clock_probe -> Opportunity
  | Instr.Probe (Instr.Counter_probe _) -> Opportunity
  | Instr.Probe (Instr.Loop_probe { latch; period; _ }) -> begin
      match loop_trips latch with
      | Some trips when trips_lo trips >= period -> Opportunity
      | _ -> Step 0
    end
  | Instr.Call callee -> begin
      match List.assoc_opt callee summaries with
      | Some s when s.always_probed -> Gate { prefix = s.max_prefix; suffix = s.max_suffix }
      | Some s -> Step (1 + s.max_prefix)
      | None -> Step 1
    end
  | _ -> Step (Instr.instruction_weight i)

(* ------------------------------------------------------------------ *)
(* Loop structure helpers                                              *)
(* ------------------------------------------------------------------ *)

(* Trip-count lookup for a function's latches. *)
let loop_trips_of (f : Cfg.func) latch =
  match f.blocks.(latch).term with Cfg.Latch { trips; _ } -> Some trips | _ -> None

(* The deepest loop owning each block (or None). *)
let block_owner (f : Cfg.func) (ls : Analysis.loop list) =
  let n = Array.length f.blocks in
  let owner = Array.make n None in
  List.iter
    (fun (l : Analysis.loop) ->
      List.iter
        (fun b ->
          match owner.(b) with
          | Some (prev : Analysis.loop) when prev.depth >= l.depth -> ()
          | _ -> owner.(b) <- Some l)
        l.body)
    ls;
  owner

let block_work summaries (b : Cfg.block) =
  List.fold_left
    (fun acc i ->
      acc
      +
      match instr_effect summaries i with
      | Step w -> w
      | Opportunity -> 0
      | Gate { prefix; suffix } -> prefix + suffix)
    0 b.instrs

(* Expansion-weighted work of one iteration of each loop: own blocks plus
   mean-trips-weighted work of directly nested loops. *)
let loop_iteration_work summaries (f : Cfg.func) (ls : Analysis.loop list) =
  let owner = block_owner f ls in
  let work : (Cfg.block_id, float) Hashtbl.t = Hashtbl.create 8 in
  (* Deepest first so children are computed before parents. *)
  let deepest_first =
    List.sort (fun (a : Analysis.loop) b -> compare b.depth a.depth) ls
  in
  List.iter
    (fun (l : Analysis.loop) ->
      let own =
        List.fold_left
          (fun acc b ->
            match owner.(b) with
            | Some o when o.latch = l.latch ->
                acc +. float_of_int (block_work summaries f.blocks.(b))
            | _ -> acc)
          0.0 l.body
      in
      let children =
        List.filter
          (fun (c : Analysis.loop) ->
            c.depth = l.depth + 1 && c.latch <> l.latch && List.mem c.header l.body)
          ls
      in
      let nested =
        List.fold_left
          (fun acc (c : Analysis.loop) ->
            acc +. (Cfg.mean_trips c.trips *. Hashtbl.find work c.latch))
          0.0 children
      in
      Hashtbl.replace work l.latch (Float.max 1.0 (own +. nested)))
    deepest_first;
  fun latch -> Hashtbl.find work latch

(* Does every path through one iteration of [l] (header -> latch) hit a
   reliable probe opportunity? *)
let iteration_guaranteed summaries (f : Cfg.func) (l : Analysis.loop) =
  let in_body = Array.make (Array.length f.blocks) false in
  List.iter (fun id -> in_body.(id) <- true) l.body;
  let order = List.filter (fun id -> in_body.(id)) (Analysis.topo_order f) in
  let preds = Cfg.predecessors f in
  let n = Array.length f.blocks in
  (* clean.(b) >= 0 iff some path from the header reaches b's exit
     without crossing a reliable opportunity. *)
  let clean = Array.make n (-1) in
  let loop_trips = loop_trips_of f in
  let is_back_edge p id =
    match f.blocks.(p).term with
    | Cfg.Latch { header; _ } -> header = id
    | _ -> false
  in
  List.iter
    (fun id ->
      let body_preds =
        List.filter (fun p -> in_body.(p) && not (is_back_edge p id)) preds.(id)
      in
      let clean_in =
        if id = l.header then 0
        else
          List.fold_left
            (fun acc p -> if clean.(p) >= 0 then max acc clean.(p) else acc)
            (-1) body_preds
      in
      let c = ref clean_in in
      List.iter
        (fun instr ->
          match instr_effect ~loop_trips summaries instr with
          | Step w -> if !c >= 0 then c := !c + w
          | Opportunity | Gate _ -> c := -1)
        f.blocks.(id).instrs;
      clean.(id) <- !c)
    order;
  clean.(l.latch) < 0

(* ------------------------------------------------------------------ *)
(* Loop instrumentation                                                *)
(* ------------------------------------------------------------------ *)

let instrument_loops config summaries (f : Cfg.func) =
  (* Deepest loops first so outer loops see inner instrumentation. *)
  let process () =
    let ls = Analysis.loops f in
    let work = loop_iteration_work summaries f ls in
    let deepest_first =
      List.sort (fun (a : Analysis.loop) b -> compare b.depth a.depth) ls
    in
    List.iter
      (fun (l : Analysis.loop) ->
        let w = work l.latch in
        let statically_small =
          float_of_int (trips_hi l.trips) *. w <= float_of_int config.bound
        in
        let guaranteed = iteration_guaranteed summaries f l in
        let period = max 1 (int_of_float (float_of_int config.bound /. w)) in
        let can_fire = trips_hi l.trips >= period in
        if (not guaranteed) && (not statically_small) && can_fire then begin
          let probe =
            Instr.Probe
              (Instr.Loop_probe
                 {
                   latch = l.latch;
                   period;
                   counter_free = l.induction;
                   cloned = Analysis.is_self_loop l;
                 })
          in
          let latch_block = f.blocks.(l.latch) in
          latch_block.instrs <- latch_block.instrs @ [ probe ]
        end)
      deepest_first
  in
  process ()

(* ------------------------------------------------------------------ *)
(* Acyclic scan                                                        *)
(* ------------------------------------------------------------------ *)

(* Residual distance carried past a loop: the worst probe-free stretch
   its execution can leave behind. *)
let loop_residual config summaries (f : Cfg.func) work (l : Analysis.loop) =
  let w = work l.latch in
  match
    List.find_opt
      (function
        | Instr.Probe (Instr.Loop_probe { latch; _ }) -> latch = l.latch
        | _ -> false)
      f.blocks.(l.latch).instrs
  with
  | Some (Instr.Probe (Instr.Loop_probe { period; _ })) ->
      int_of_float (float_of_int period *. w)
  | _ ->
      if iteration_guaranteed summaries f l then int_of_float w
      else
        (* Uninstrumented: total work is statically bounded (or the loop
           cannot reach its period); cap at the total. *)
        min
          (int_of_float (float_of_int (trips_hi l.trips) *. w))
          (2 * config.bound)

let scan_function config summaries (f : Cfg.func) =
  let n = Array.length f.blocks in
  let preds = Cfg.predecessors f in
  let out_dist = Array.make n 0 in
  let ls = Analysis.loops f in
  let work = loop_iteration_work summaries f ls in
  (* Per-header loop facts: residual gap left at the exit, whether a
     probe is certain to fire on every entry, and total worst-case work
     of uninstrumented entries. *)
  let residual_at = Array.make n 0 in
  let fires_surely = Array.make n false in
  let total_work_at = Array.make n 0 in
  let is_header = Array.make n false in
  List.iter
    (fun (l : Analysis.loop) ->
      is_header.(l.header) <- true;
      residual_at.(l.header) <-
        max residual_at.(l.header) (loop_residual config summaries f work l);
      let instrumented_period =
        List.find_map
          (function
            | Instr.Probe (Instr.Loop_probe { latch; period; _ }) when latch = l.latch ->
                Some period
            | _ -> None)
          f.blocks.(l.latch).instrs
      in
      let surely =
        iteration_guaranteed summaries f l
        || match instrumented_period with
           | Some period -> trips_lo l.trips >= period
           | None -> false
      in
      fires_surely.(l.header) <- surely;
      total_work_at.(l.header) <-
        max total_work_at.(l.header)
          (int_of_float (float_of_int (trips_hi l.trips) *. work l.latch)))
    ls;
  (* A predecessor edge is a back edge only when it is the latch of the
     loop whose header is this block; latch->exit edges are forward. *)
  let is_back_edge p id =
    match f.blocks.(p).term with
    | Cfg.Latch { header; _ } -> header = id
    | _ -> false
  in
  let loop_trips = loop_trips_of f in
  let header_in = Array.make n 0 in
  let scan_block id =
    let block = f.blocks.(id) in
    let fwd_preds = List.filter (fun p -> not (is_back_edge p id)) preds.(id) in
    let pred_in = List.fold_left (fun acc p -> max acc out_dist.(p)) 0 fwd_preds in
    (* Loop bodies scan from a fresh distance: intra-iteration gaps are
       the loop probe's responsibility; the pre-loop distance is carried
       to the exit edge instead (see the latch case below). *)
    let in_dist =
      if is_header.(id) then begin
        header_in.(id) <- pred_in;
        0
      end
      else pred_in
    in
    let dist = ref in_dist in
    let rev_out = ref [] in
    List.iter
      (fun instr ->
        (match instr_effect ~loop_trips summaries instr with
        | Opportunity -> dist := 0
        | Gate { prefix; suffix } ->
            if !dist + prefix > config.bound && !dist > 0 then begin
              rev_out := Instr.Probe Instr.Clock_probe :: !rev_out;
              dist := 0
            end;
            dist := suffix
        | Step w ->
            if !dist + w > config.bound && !dist > 0 then begin
              rev_out := Instr.Probe Instr.Clock_probe :: !rev_out;
              dist := 0
            end;
            dist := !dist + w);
        rev_out := instr :: !rev_out)
      block.instrs;
    block.instrs <- List.rev !rev_out;
    (* The exit edge of a loop carries the loop residual, plus the
       pre-loop distance when no probe is certain to have fired. *)
    (match block.term with
    | Cfg.Latch { header; _ } ->
        let carry =
          if fires_surely.(header) then residual_at.(header)
          else header_in.(header) + min residual_at.(header) total_work_at.(header)
        in
        dist := max !dist carry
    | _ -> ());
    out_dist.(id) <- !dist
  in
  List.iter scan_block (Analysis.topo_order f)

(* ------------------------------------------------------------------ *)
(* Function summaries                                                  *)
(* ------------------------------------------------------------------ *)

let summarize summaries (f : Cfg.func) =
  let n = Array.length f.blocks in
  let preds = Cfg.predecessors f in
  let is_back_edge p id =
    match f.blocks.(p).term with
    | Cfg.Latch { header; _ } -> header = id
    | _ -> false
  in
  let loop_trips = loop_trips_of f in
  let tail = Array.make n 0 and clean = Array.make n (-1) in
  let max_prefix = ref 0 and max_suffix = ref 0 and clean_ret = ref false in
  let scan_block id =
    let block = f.blocks.(id) in
    let fwd_preds = List.filter (fun p -> not (is_back_edge p id)) preds.(id) in
    let tail_in = List.fold_left (fun acc p -> max acc tail.(p)) 0 fwd_preds in
    let clean_in =
      if id = f.entry then 0
      else
        List.fold_left
          (fun acc p -> if clean.(p) >= 0 then max acc clean.(p) else acc)
          (-1) fwd_preds
    in
    let t = ref tail_in and c = ref clean_in in
    List.iter
      (fun instr ->
        match instr_effect ~loop_trips summaries instr with
        | Step w ->
            t := !t + w;
            if !c >= 0 then c := !c + w
        | Opportunity ->
            if !c >= 0 then max_prefix := max !max_prefix !c;
            t := 0;
            c := -1
        | Gate { prefix; suffix } ->
            if !c >= 0 then max_prefix := max !max_prefix (!c + prefix);
            t := suffix;
            c := -1)
      block.instrs;
    tail.(id) <- !t;
    clean.(id) <- !c;
    match block.term with
    | Cfg.Ret ->
        max_suffix := max !max_suffix !t;
        if !c >= 0 then begin
          clean_ret := true;
          max_prefix := max !max_prefix !c
        end
    | _ -> ()
  in
  List.iter scan_block (Analysis.topo_order f);
  { max_prefix = !max_prefix; max_suffix = !max_suffix; always_probed = not !clean_ret }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let callees (f : Cfg.func) =
  Array.to_list f.blocks
  |> List.concat_map (fun (b : Cfg.block) ->
         List.filter_map (function Instr.Call callee -> Some callee | _ -> None) b.instrs)

(* Bottom-up call-graph order (callees before callers). *)
let callee_first_order (p : Cfg.program) =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name `Visiting;
      let f = Cfg.func_of_program p name in
      List.iter
        (fun callee ->
          match Hashtbl.find_opt visited callee with
          | Some `Visiting -> invalid_arg "Tq_pass: recursive call graph"
          | Some `Done -> ()
          | None -> visit callee)
        (callees f);
      Hashtbl.replace visited name `Done;
      order := name :: !order
    end
  in
  List.iter (fun (name, _) -> visit name) p.funcs;
  List.rev !order

let copy_func (f : Cfg.func) =
  {
    f with
    blocks = Array.map (fun (b : Cfg.block) -> { b with instrs = b.instrs }) f.blocks;
  }

let instrument ?(config = default_config) (p : Cfg.program) =
  if config.bound < 1 then invalid_arg "Tq_pass.instrument: bound must be positive";
  let copied = { p with funcs = List.map (fun (n, f) -> (n, copy_func f)) p.funcs } in
  let summaries = ref [] in
  List.iter
    (fun name ->
      let f = Cfg.func_of_program copied name in
      if not (List.mem name config.non_reentrant) then begin
        instrument_loops config !summaries f;
        scan_function config !summaries f
      end;
      summaries := (name, summarize !summaries f) :: !summaries)
    (callee_first_order copied);
  Cfg.validate copied;
  copied
