module Sample_set = Tq_stats.Sample_set

type t = {
  workload : Service_dist.t;
  warmup_ns : int;
  sojourn : Sample_set.t array;
  slowdown : Sample_set.t array;
}

let create ~workload ~warmup_ns =
  let n = Service_dist.class_count workload in
  {
    workload;
    warmup_ns;
    sojourn = Array.init n (fun _ -> Sample_set.create ());
    slowdown = Array.init n (fun _ -> Sample_set.create ());
  }

let record t ~class_idx ~arrival_ns ~finish_ns ~service_ns =
  if finish_ns < arrival_ns then invalid_arg "Metrics.record: finish before arrival";
  if arrival_ns >= t.warmup_ns then begin
    let sojourn = float_of_int (finish_ns - arrival_ns) in
    Sample_set.add t.sojourn.(class_idx) sojourn;
    Sample_set.add t.slowdown.(class_idx) (sojourn /. float_of_int (max 1 service_ns))
  end

let completed t ~class_idx = Sample_set.count t.sojourn.(class_idx)

let total_completed t =
  Array.fold_left (fun acc s -> acc + Sample_set.count s) 0 t.sojourn

let sojourn_percentile t ~class_idx p = Sample_set.percentile t.sojourn.(class_idx) p
let slowdown_percentile t ~class_idx p = Sample_set.percentile t.slowdown.(class_idx) p

let merged sets =
  let merged = Sample_set.create () in
  Array.iter
    (fun s -> Array.iter (Sample_set.add merged) (Sample_set.to_sorted_array s))
    sets;
  merged

let overall_sojourn_percentile t p = Sample_set.percentile (merged t.sojourn) p
let overall_slowdown_percentile t p = Sample_set.percentile (merged t.slowdown) p
let mean_sojourn t ~class_idx = Sample_set.mean t.sojourn.(class_idx)
let class_count t = Service_dist.class_count t.workload
let class_name t i = Service_dist.class_name t.workload i
