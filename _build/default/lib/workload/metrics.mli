(** Per-class latency accounting for one experiment run.

    Records sojourn time (arrival at the server to completion, the
    paper's server-side metric) and slowdown (sojourn / service time) per
    job class.  Samples whose arrival falls inside the warm-up window are
    discarded, mirroring the paper's "first 10% of samples dropped". *)

type t

val create : workload:Service_dist.t -> warmup_ns:int -> t

(** [record t ~class_idx ~arrival_ns ~finish_ns ~service_ns] accounts one
    completed job. *)
val record : t -> class_idx:int -> arrival_ns:int -> finish_ns:int -> service_ns:int -> unit

(** Number of recorded (post-warm-up) completions for a class. *)
val completed : t -> class_idx:int -> int

val total_completed : t -> int

(** [sojourn_percentile t ~class_idx p] in nanoseconds. *)
val sojourn_percentile : t -> class_idx:int -> float -> float

(** [slowdown_percentile t ~class_idx p]. *)
val slowdown_percentile : t -> class_idx:int -> float -> float

(** Percentile over all classes merged. *)
val overall_sojourn_percentile : t -> float -> float

val overall_slowdown_percentile : t -> float -> float
val mean_sojourn : t -> class_idx:int -> float
val class_count : t -> int
val class_name : t -> int -> string
