module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng

type request = { req_id : int; class_idx : int; service_ns : int; arrival_ns : int }

let install sim ~rng ~workload ~rate_rps ~duration_ns ~sink =
  if rate_rps <= 0.0 then invalid_arg "Arrivals.install: rate must be positive";
  let issued = ref 0 in
  let mean_gap_ns = 1e9 /. rate_rps in
  let next_gap () =
    max 1 (int_of_float (Float.round (Prng.exponential rng ~mean:mean_gap_ns)))
  in
  let rec arrive () =
    let now = Sim.now sim in
    if now <= duration_ns then begin
      let class_idx, service_ns = Service_dist.sample workload rng in
      incr issued;
      sink { req_id = !issued; class_idx; service_ns; arrival_ns = now };
      ignore (Sim.schedule_after sim ~delay:(next_gap ()) arrive : Sim.event)
    end
  in
  ignore (Sim.schedule_after sim ~delay:(next_gap ()) arrive : Sim.event);
  issued

let capacity_rps ~cores workload =
  float_of_int cores /. (Service_dist.mean_service_ns workload /. 1e9)
