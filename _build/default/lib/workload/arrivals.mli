(** Open-loop Poisson request generator.

    Mirrors the paper's client: requests arrive as a Poisson process at a
    configured rate regardless of server progress (open loop), each
    carrying a class and service time drawn from the workload.  The
    generator stops issuing after [duration] of virtual time. *)

type request = {
  req_id : int;
  class_idx : int;
  service_ns : int;
  arrival_ns : int;  (** when the request reached the server NIC *)
}

(** [install sim ~rng ~workload ~rate_rps ~duration_ns ~sink] schedules
    the whole arrival process; [sink] is invoked at each arrival time.
    Returns a counter cell holding the number of requests issued. *)
val install :
  Tq_engine.Sim.t ->
  rng:Tq_util.Prng.t ->
  workload:Service_dist.t ->
  rate_rps:float ->
  duration_ns:int ->
  sink:(request -> unit) ->
  int ref

(** [capacity_rps ~cores workload] is the theoretical saturation rate:
    cores / mean service time. *)
val capacity_rps : cores:int -> Service_dist.t -> float
