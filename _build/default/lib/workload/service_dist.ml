module Prng = Tq_util.Prng

type sampler =
  | Fixed of int
  | Exponential of float
  | Uniform of int * int
  | Lognormal of { median_ns : float; sigma : float }
  | Empirical of int array

type job_class = { class_name : string; ratio : float; sampler : sampler }
type t = { name : string; classes : job_class array }

let make ~name classes =
  if classes = [] then invalid_arg "Service_dist.make: no classes";
  let total = List.fold_left (fun acc c -> acc +. c.ratio) 0.0 classes in
  if Float.abs (total -. 1.0) > 1e-6 then
    invalid_arg
      (Printf.sprintf "Service_dist.make(%s): ratios sum to %f, expected 1.0" name total);
  List.iter
    (fun c -> if c.ratio <= 0.0 then invalid_arg "Service_dist.make: non-positive ratio")
    classes;
  { name; classes = Array.of_list classes }

let sample_one sampler rng =
  let v =
    match sampler with
    | Fixed ns -> ns
    | Exponential mean -> int_of_float (Float.round (Prng.exponential rng ~mean))
    | Uniform (lo, hi) -> Prng.int_in_range rng ~lo ~hi
    | Lognormal { median_ns; sigma } ->
        int_of_float (Float.round (Prng.lognormal rng ~mu:(log median_ns) ~sigma))
    | Empirical samples ->
        if Array.length samples = 0 then invalid_arg "Service_dist: empty empirical sampler"
        else samples.(Prng.int rng (Array.length samples))
  in
  max 1 v

let sample t rng =
  let weights = Array.map (fun c -> c.ratio) t.classes in
  let idx = Prng.choose_weighted rng weights in
  (idx, sample_one t.classes.(idx).sampler rng)

let sampler_mean_ns = function
  | Fixed ns -> float_of_int ns
  | Exponential mean -> mean
  | Uniform (lo, hi) -> (float_of_int lo +. float_of_int hi) /. 2.0
  | Lognormal { median_ns; sigma } -> median_ns *. exp (sigma *. sigma /. 2.0)
  | Empirical samples ->
      if Array.length samples = 0 then nan
      else
        Array.fold_left (fun acc s -> acc +. float_of_int s) 0.0 samples
        /. float_of_int (Array.length samples)

let mean_service_ns t =
  Array.fold_left (fun acc c -> acc +. (c.ratio *. sampler_mean_ns c.sampler)) 0.0 t.classes

let class_count t = Array.length t.classes
let class_name t i = t.classes.(i).class_name

let dispersion_ratio t =
  let means = Array.map (fun c -> sampler_mean_ns c.sampler) t.classes in
  let lo = Array.fold_left Float.min infinity means in
  let hi = Array.fold_left Float.max neg_infinity means in
  hi /. lo
