lib/workload/metrics.ml: Array Service_dist Tq_stats
