lib/workload/arrivals.ml: Float Service_dist Tq_engine Tq_util
