lib/workload/arrivals.mli: Service_dist Tq_engine Tq_util
