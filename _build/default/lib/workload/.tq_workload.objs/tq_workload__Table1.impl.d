lib/workload/table1.ml: List Service_dist Tq_util
