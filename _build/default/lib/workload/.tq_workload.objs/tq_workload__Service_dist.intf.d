lib/workload/service_dist.mli: Tq_util
