lib/workload/table1.mli: Service_dist
