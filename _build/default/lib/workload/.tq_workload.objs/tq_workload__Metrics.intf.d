lib/workload/metrics.mli: Service_dist
