lib/workload/service_dist.ml: Array Float List Printf Tq_util
