(** Service-time distributions and workload specifications.

    A workload is a mixture of job classes; each class has a name, a
    mixing ratio and a service-time sampler.  This mirrors Table 1 of the
    paper, where every evaluated workload is either a discrete mixture
    (bimodal, TPC-C, RocksDB) or a continuous distribution (Exp(1)). *)

(** Per-class service-time sampler; all times in nanoseconds. *)
type sampler =
  | Fixed of int  (** deterministic service time *)
  | Exponential of float  (** exponential with the given mean *)
  | Uniform of int * int  (** uniform over inclusive bounds *)
  | Lognormal of { median_ns : float; sigma : float }
      (** heavy-tailed; exp(N(ln median, sigma^2)) *)
  | Empirical of int array
      (** trace-driven: sample uniformly from recorded service times —
          how one feeds TQ a measured production distribution *)

type job_class = { class_name : string; ratio : float; sampler : sampler }

type t = { name : string; classes : job_class array }

(** [make ~name classes] validates ratios (positive, summing to ~1). *)
val make : name:string -> job_class list -> t

(** [sample t rng] draws a class index and a service time (>= 1 ns). *)
val sample : t -> Tq_util.Prng.t -> int * int

(** [sampler_mean_ns s] is the exact mean of one sampler. *)
val sampler_mean_ns : sampler -> float

(** [mean_service_ns t] is the mixture mean. *)
val mean_service_ns : t -> float

(** [class_count t] is the number of classes. *)
val class_count : t -> int

(** [class_name t i] looks up a class name. *)
val class_name : t -> int -> string

(** [dispersion_ratio t] is max mean / min mean over classes (the paper
    calls this the runtime ratio between long and short jobs). *)
val dispersion_ratio : t -> float
