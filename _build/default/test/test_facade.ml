(* Smoke tests of the public Tq facade: the paths the README and
   examples advertise must work through the umbrella module. *)

let check = Alcotest.check

let test_readme_quickstart_path () =
  let result =
    Tq.Sched.Experiment.run
      ~system:(Tq.Sched.Presets.tq ())
      ~workload:Tq.Workload.Table1.extreme_bimodal ~rate_rps:2_000_000.0
      ~duration_ns:(Tq.Util.Time_unit.ms 10.0) ()
  in
  let p999 =
    Tq.Workload.Metrics.sojourn_percentile result.metrics ~class_idx:0 99.9 /. 1e3
  in
  Alcotest.(check bool) "sane tail" true (p999 > 0.1 && p999 < 1_000.0)

let test_facade_modules_reachable () =
  (* Each substrate is reachable and does something trivial. *)
  let rng = Tq.Util.Prng.create ~seed:1L in
  Alcotest.(check bool) "prng" true (Tq.Util.Prng.int rng 10 < 10);
  let store = Tq.Kv.Store.create () in
  Tq.Kv.Store.put store "k" "v";
  check Alcotest.(option string) "kv" (Some "v") (Tq.Kv.Store.get store "k");
  let db = Tq.Tpcc.Schema.create () in
  check Alcotest.(list string) "tpcc consistent" [] (Tq.Tpcc.Consistency.check db);
  let prog = Tq.Instrument.Bench_programs.lowered Tq.Instrument.Bench_programs.rocksdb_get in
  Alcotest.(check bool) "instrument" true
    (Tq.Ir.Cfg.program_probe_count (Tq.Instrument.Tq_pass.instrument prog) > 0);
  check Alcotest.int "rss" (Tq.Net.Rss.queue_of_flow ~flow:7 ~queues:4)
    (Tq.Net.Rss.queue_of_flow ~flow:7 ~queues:4);
  Alcotest.(check bool) "queueing" true
    (Tq.Queueing.Queueing.erlang_c ~lambda:1.0 ~mu:2.0 ~servers:1 > 0.0);
  let ex = Tq.Runtime.Executor.create ~workers:2 ~quantum_ns:1_000 () in
  Tq.Runtime.Executor.submit ex (fun () -> Tq.Runtime.Instrumented.work_ns 2_500);
  Tq.Runtime.Executor.run ex;
  check Alcotest.int "runtime" 1 (Tq.Runtime.Executor.completed ex);
  check Alcotest.string "version" "1.0.0" Tq.version

let test_facade_cache_and_stats () =
  let shared = Tq.Cache.Hierarchy.create_shared () in
  let core = Tq.Cache.Hierarchy.create_core shared in
  ignore (Tq.Cache.Hierarchy.access core 0x1000);
  let s = Tq.Stats.Sample_set.create () in
  Tq.Stats.Sample_set.add s 1.0;
  check (Alcotest.float 1e-9) "stats" 1.0 (Tq.Stats.Sample_set.percentile s 50.0)

let suite =
  [
    Alcotest.test_case "readme quickstart" `Quick test_readme_quickstart_path;
    Alcotest.test_case "modules reachable" `Quick test_facade_modules_reachable;
    Alcotest.test_case "cache and stats" `Quick test_facade_cache_and_stats;
  ]
