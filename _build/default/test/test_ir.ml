(* Tests for tq_ir: instructions, CFG construction/validation, lowering,
   analyses. *)

open Tq_ir

let check = Alcotest.check

(* --- Instr --- *)

let test_instruction_weights () =
  check Alcotest.int "alu" 1 (Instr.instruction_weight Instr.Alu);
  check Alcotest.int "probe weighs nothing" 0
    (Instr.instruction_weight (Instr.Probe Instr.Clock_probe));
  check Alcotest.int "external scaled" 60
    (Instr.instruction_weight (Instr.External { name = "x"; cycles = 120 }))

let test_expected_cycles () =
  check (Alcotest.float 1e-9) "alu" 1.0 (Instr.expected_cycles Instr.Alu);
  check (Alcotest.float 1e-9) "load mix"
    ((0.9 *. 4.0) +. (0.1 *. 40.0))
    (Instr.expected_cycles (Instr.Load { miss_prob = 0.1 }))

let test_is_probe () =
  Alcotest.(check bool) "probe" true (Instr.is_probe (Instr.Probe Instr.Clock_probe));
  Alcotest.(check bool) "alu" false (Instr.is_probe Instr.Alu)

(* --- Builder / validation --- *)

let diamond () =
  let b = Cfg.Builder.create ~fname:"f" in
  Cfg.Builder.emit b Instr.Alu;
  let t = Cfg.Builder.new_block b in
  let e = Cfg.Builder.new_block b in
  let join = Cfg.Builder.new_block b in
  Cfg.Builder.terminate b (Cfg.Branch { taken_prob = 0.5; if_true = t; if_false = e });
  Cfg.Builder.switch_to b t;
  Cfg.Builder.emit b Instr.Mul;
  Cfg.Builder.terminate b (Cfg.Jump join);
  Cfg.Builder.switch_to b e;
  Cfg.Builder.emit b Instr.Div;
  Cfg.Builder.terminate b (Cfg.Jump join);
  Cfg.Builder.switch_to b join;
  Cfg.Builder.terminate b Cfg.Ret;
  Cfg.Builder.finish b

let test_builder_diamond () =
  let f = diamond () in
  check Alcotest.int "four blocks" 4 (Array.length f.blocks);
  check Alcotest.int "entry" 0 f.entry;
  Cfg.validate { funcs = [ ("f", f) ]; main = "f" };
  let preds = Cfg.predecessors f in
  check Alcotest.(list int) "join preds" [ 1; 2 ] (List.sort compare preds.(3))

let test_validate_rejects_bad_target () =
  let b = Cfg.Builder.create ~fname:"f" in
  Cfg.Builder.terminate b (Cfg.Jump 99);
  let f = Cfg.Builder.finish b in
  Alcotest.(check bool) "rejected" true
    (try
       Cfg.validate { funcs = [ ("f", f) ]; main = "f" };
       false
     with Invalid_argument _ -> true)

let test_validate_rejects_unknown_call () =
  let b = Cfg.Builder.create ~fname:"f" in
  Cfg.Builder.emit b (Instr.Call "ghost");
  Cfg.Builder.terminate b Cfg.Ret;
  let f = Cfg.Builder.finish b in
  Alcotest.(check bool) "rejected" true
    (try
       Cfg.validate { funcs = [ ("f", f) ]; main = "f" };
       false
     with Invalid_argument _ -> true)

let test_validate_rejects_missing_main () =
  Alcotest.(check bool) "rejected" true
    (try
       Cfg.validate { funcs = []; main = "nope" };
       false
     with Invalid_argument _ -> true)

(* --- Lowering --- *)

let test_lower_work_counts () =
  let f = Lower.lower_func ~fname:"f" (Ast.mixed ~alu:3 ~muls:2 ~loads:1 ~stores:1 ()) in
  check Alcotest.int "instruction count" 7 (Cfg.func_instruction_count f)

let test_lower_if_shape () =
  let f =
    Lower.lower_func ~fname:"f" (Ast.if_ ~prob:0.3 (Ast.work 5) (Ast.work 2))
  in
  Cfg.validate { funcs = [ ("f", f) ]; main = "f" };
  (* entry + then + else + join *)
  check Alcotest.int "blocks" 4 (Array.length f.blocks);
  match f.blocks.(0).term with
  | Cfg.Branch { taken_prob; _ } -> check (Alcotest.float 1e-9) "prob" 0.3 taken_prob
  | _ -> Alcotest.fail "expected branch"

let test_lower_loop_shape () =
  let f = Lower.lower_func ~fname:"f" (Ast.loop_n 10 (Ast.work 3)) in
  Cfg.validate { funcs = [ ("f", f) ]; main = "f" };
  let latches =
    Array.to_list f.blocks
    |> List.filter (fun (b : Cfg.block) ->
           match b.term with Cfg.Latch _ -> true | _ -> false)
  in
  check Alcotest.int "one latch" 1 (List.length latches);
  match (List.hd latches).term with
  | Cfg.Latch { trips = Cfg.Static 10; _ } -> ()
  | _ -> Alcotest.fail "expected static trips 10"

let test_lower_program_validates () =
  let src =
    {
      Ast.src_funcs =
        [ ("main", Ast.seq [ Ast.CallFn "helper"; Ast.work 1 ]); ("helper", Ast.work 5) ];
      src_main = "main";
    }
  in
  let p = Lower.lower_program src in
  check Alcotest.int "two funcs" 2 (List.length p.funcs)

let test_expected_instruction_count () =
  let src =
    {
      Ast.src_funcs =
        [
          ("main", Ast.seq [ Ast.loop_n 10 (Ast.work 5); Ast.CallFn "h" ]);
          ("h", Ast.work 9);
        ];
      src_main = "main";
    }
  in
  check (Alcotest.float 1e-9) "10*5 + 1 + 9" 60.0
    (Ast.expected_instruction_count src "main")

(* --- Analysis --- *)

let test_topo_order_diamond () =
  let f = diamond () in
  let order = Analysis.topo_order f in
  let pos id = Option.get (List.find_index (fun x -> x = id) order) in
  Alcotest.(check bool) "entry before branches" true (pos 0 < pos 1 && pos 0 < pos 2);
  Alcotest.(check bool) "branches before join" true (pos 1 < pos 3 && pos 2 < pos 3)

let test_loops_nesting () =
  let f =
    Lower.lower_func ~fname:"f" (Ast.loop_n 5 (Ast.seq [ Ast.work 1; Ast.loop_n 3 (Ast.work 2) ]))
  in
  let ls = Analysis.loops f in
  check Alcotest.int "two loops" 2 (List.length ls);
  let outer = List.nth ls 0 and inner = List.nth ls 1 in
  check Alcotest.int "outer depth" 1 outer.Analysis.depth;
  check Alcotest.int "inner depth" 2 inner.Analysis.depth;
  Alcotest.(check bool) "inner body inside outer" true
    (List.for_all (fun b -> List.mem b outer.Analysis.body) inner.Analysis.body)

let test_self_loop_detection () =
  let f = Lower.lower_func ~fname:"f" (Ast.loop_n 5 (Ast.work 2)) in
  match Analysis.loops f with
  | [ l ] -> Alcotest.(check bool) "self loop" true (Analysis.is_self_loop l)
  | _ -> Alcotest.fail "expected one loop"

let test_non_self_loop () =
  let f =
    Lower.lower_func ~fname:"f"
      (Ast.loop_n 5 (Ast.if_ ~prob:0.5 (Ast.work 1) (Ast.work 2)))
  in
  match Analysis.loops f with
  | [ l ] -> Alcotest.(check bool) "not self loop" false (Analysis.is_self_loop l)
  | _ -> Alcotest.fail "expected one loop"

let test_reachable () =
  let f = diamond () in
  let r = Analysis.reachable f in
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id r)

let test_mean_trips () =
  check (Alcotest.float 1e-9) "static" 7.0 (Cfg.mean_trips (Cfg.Static 7));
  check (Alcotest.float 1e-9) "dynamic" 15.0 (Cfg.mean_trips (Cfg.Dynamic { lo = 10; hi = 20 }))

let suite =
  [
    Alcotest.test_case "instruction weights" `Quick test_instruction_weights;
    Alcotest.test_case "expected cycles" `Quick test_expected_cycles;
    Alcotest.test_case "is_probe" `Quick test_is_probe;
    Alcotest.test_case "builder diamond" `Quick test_builder_diamond;
    Alcotest.test_case "validate bad target" `Quick test_validate_rejects_bad_target;
    Alcotest.test_case "validate unknown call" `Quick test_validate_rejects_unknown_call;
    Alcotest.test_case "validate missing main" `Quick test_validate_rejects_missing_main;
    Alcotest.test_case "lower work counts" `Quick test_lower_work_counts;
    Alcotest.test_case "lower if shape" `Quick test_lower_if_shape;
    Alcotest.test_case "lower loop shape" `Quick test_lower_loop_shape;
    Alcotest.test_case "lower program" `Quick test_lower_program_validates;
    Alcotest.test_case "expected instr count" `Quick test_expected_instruction_count;
    Alcotest.test_case "topo order" `Quick test_topo_order_diamond;
    Alcotest.test_case "loop nesting" `Quick test_loops_nesting;
    Alcotest.test_case "self loop" `Quick test_self_loop_detection;
    Alcotest.test_case "non-self loop" `Quick test_non_self_loop;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "mean trips" `Quick test_mean_trips;
  ]
