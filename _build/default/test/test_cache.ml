(* Tests for tq_cache: LRU cache, hierarchy, pointer-chase emulation,
   reuse-distance analysis, Table 2 model. *)

open Tq_cache

let check = Alcotest.check

(* --- Cache --- *)

let test_cache_hit_after_fill () =
  let c = Cache.create ~size_bytes:4096 ~ways:4 () in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0x1000);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0x1000);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x1020);
  Alcotest.(check bool) "different line misses" false (Cache.access c 0x1040)

let test_cache_lru_eviction () =
  (* Direct construction: 4-way cache, hammer one set with 5 lines. *)
  let c = Cache.create ~size_bytes:(4 * 64) ~ways:4 () in
  (* single set: all lines map to set 0 *)
  for i = 0 to 3 do
    ignore (Cache.access c (i * 64))
  done;
  ignore (Cache.access c (4 * 64));
  (* line 0 was LRU -> evicted *)
  Alcotest.(check bool) "line 0 evicted" false (Cache.probe c 0);
  Alcotest.(check bool) "line 1 retained" true (Cache.probe c 64);
  Alcotest.(check bool) "new line present" true (Cache.probe c (4 * 64))

let test_cache_lru_touch_protects () =
  let c = Cache.create ~size_bytes:(4 * 64) ~ways:4 () in
  for i = 0 to 3 do
    ignore (Cache.access c (i * 64))
  done;
  (* Touch line 0 so line 1 becomes LRU. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c (4 * 64));
  Alcotest.(check bool) "line 0 protected" true (Cache.probe c 0);
  Alcotest.(check bool) "line 1 evicted" false (Cache.probe c 64)

let test_cache_probe_pure () =
  let c = Cache.create ~size_bytes:4096 ~ways:4 () in
  Alcotest.(check bool) "probe misses" false (Cache.probe c 0x2000);
  Alcotest.(check bool) "probe did not install" false (Cache.probe c 0x2000);
  check Alcotest.int "no accesses counted" 0 (Cache.accesses c)

let test_cache_stats () =
  let c = Cache.create ~size_bytes:4096 ~ways:4 () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  check Alcotest.int "accesses" 2 (Cache.accesses c);
  check Alcotest.int "misses" 1 (Cache.misses c);
  check (Alcotest.float 1e-9) "miss rate" 0.5 (Cache.miss_rate c);
  Cache.reset_stats c;
  check Alcotest.int "reset" 0 (Cache.accesses c);
  Alcotest.(check bool) "contents kept" true (Cache.probe c 0);
  Cache.clear c;
  Alcotest.(check bool) "cleared" false (Cache.probe c 0)

let test_cache_geometry_validation () =
  Alcotest.(check bool) "bad sets rejected" true
    (try
       ignore (Cache.create ~size_bytes:3000 ~ways:4 ());
       false
     with Invalid_argument _ -> true)

let test_cache_working_set_capacity () =
  (* A working set within capacity has no misses after warmup. *)
  let c = Cache.create ~size_bytes:8192 ~ways:8 () in
  let lines = 8192 / 64 in
  for i = 0 to lines - 1 do
    ignore (Cache.access c (i * 64))
  done;
  Cache.reset_stats c;
  for _ = 1 to 5 do
    for i = 0 to lines - 1 do
      ignore (Cache.access c (i * 64))
    done
  done;
  check Alcotest.int "no misses" 0 (Cache.misses c)

(* --- Hierarchy --- *)

let test_hierarchy_latency_ladder () =
  let shared = Hierarchy.create_shared () in
  let core = Hierarchy.create_core shared in
  let geo = Hierarchy.geometry core in
  check Alcotest.int "cold access = memory" geo.mem_latency (Hierarchy.access core 0x5000);
  check Alcotest.int "warm access = l1" geo.l1_latency (Hierarchy.access core 0x5000)

let test_hierarchy_l2_serves_l1_victims () =
  let shared = Hierarchy.create_shared () in
  let core = Hierarchy.create_core shared in
  let geo = Hierarchy.geometry core in
  (* Touch 64KB (twice L1): early lines fall out of L1 but stay in L2. *)
  let lines = 64 * 1024 / 64 in
  for i = 0 to lines - 1 do
    ignore (Hierarchy.access core (i * 64))
  done;
  check Alcotest.int "l1 victim served by l2" geo.l2_latency (Hierarchy.access core 0)

let test_hierarchy_shared_l3 () =
  let shared = Hierarchy.create_shared () in
  let a = Hierarchy.create_core shared and b = Hierarchy.create_core shared in
  let geo = Hierarchy.geometry a in
  ignore (Hierarchy.access a 0x9000);
  (* Core b misses privately but hits the shared L3. *)
  check Alcotest.int "cross-core l3 hit" geo.l3_latency (Hierarchy.access b 0x9000)

(* --- Pointer chase --- *)

let chase_config ?(framework = Pointer_chase.Tls) ?(quantum_ns = 2000) ~array_kb () =
  {
    Pointer_chase.framework;
    access_order = Pointer_chase.Random_order;
    prefetch = false;
    cores = 4;
    arrays_per_core = 4;
    array_bytes = array_kb * 1024;
    quantum_accesses = Pointer_chase.quantum_accesses_of_ns quantum_ns;
    target_accesses_per_core = 40_000;
    seed = 3L;
  }

let test_chase_small_arrays_insensitive () =
  let small = Pointer_chase.run (chase_config ~array_kb:4 ~quantum_ns:500 ()) in
  let large = Pointer_chase.run (chase_config ~array_kb:4 ~quantum_ns:16_000 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "4KB: %.1f vs %.1f" small.mean_latency_cycles large.mean_latency_cycles)
    true
    (Float.abs (small.mean_latency_cycles -. large.mean_latency_cycles) < 1.0)

let test_chase_midsize_quantum_sensitive () =
  (* 16KB arrays: small quanta amplify reuse distances past L1. *)
  let small = Pointer_chase.run (chase_config ~array_kb:16 ~quantum_ns:2000 ()) in
  let large = Pointer_chase.run (chase_config ~array_kb:16 ~quantum_ns:16_000 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "16KB: 2us %.1f > 16us %.1f" small.mean_latency_cycles
       large.mean_latency_cycles)
    true
    (small.mean_latency_cycles > large.mean_latency_cycles +. 2.0)

let test_chase_ct_worse_than_tls () =
  (* 4 cores x 4 jobs x 64KB: CT's amplified footprint (1MB) busts the
     private L2, TLS's (256KB) does not. *)
  let tls = Pointer_chase.run (chase_config ~framework:Pointer_chase.Tls ~array_kb:64 ()) in
  let ct = Pointer_chase.run (chase_config ~framework:Pointer_chase.Ct ~array_kb:64 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "ct %.1f > tls %.1f" ct.mean_latency_cycles tls.mean_latency_cycles)
    true
    (ct.mean_latency_cycles > tls.mean_latency_cycles +. 2.0)

let test_chase_deterministic () =
  let a = Pointer_chase.run (chase_config ~array_kb:8 ()) in
  let b = Pointer_chase.run (chase_config ~array_kb:8 ()) in
  check (Alcotest.float 1e-9) "same latency" a.mean_latency_cycles b.mean_latency_cycles

(* --- Reuse distance --- *)

let test_reuse_simple_trace () =
  (* a b a : the second access to a has distance 1 line = 64 bytes. *)
  let p = Reuse_distance.analyze [| 0; 64; 0 |] in
  check Alcotest.int "cold accesses" 2 (Reuse_distance.cold_accesses p);
  check Alcotest.int "total" 3 (Reuse_distance.total_accesses p);
  let h = Reuse_distance.histogram p in
  check Alcotest.int "one measured distance" 1 (Tq_stats.Histogram.count h);
  check Alcotest.int "distance 64B" 64 (Tq_stats.Histogram.percentile h 100.0)

let test_reuse_zero_distance () =
  let p = Reuse_distance.analyze [| 0; 0 |] in
  let h = Reuse_distance.histogram p in
  check Alcotest.int "distance 0" 0 (Tq_stats.Histogram.percentile h 100.0)

let test_reuse_cyclic_array () =
  (* Iterating N lines cyclically: every non-cold access has distance
     (N-1) lines. *)
  let n = 16 in
  let trace = Array.init (n * 4) (fun i -> i mod n * 64) in
  let p = Reuse_distance.analyze trace in
  check Alcotest.int "cold" n (Reuse_distance.cold_accesses p);
  let h = Reuse_distance.histogram p in
  check Alcotest.int "min distance" ((n - 1) * 64) (Tq_stats.Histogram.percentile h 1.0);
  check Alcotest.int "max distance" ((n - 1) * 64) (Tq_stats.Histogram.percentile h 100.0)

let test_reuse_fraction_above () =
  let n = 16 in
  let trace = Array.init (n * 4) (fun i -> i mod n * 64) in
  let p = Reuse_distance.analyze trace in
  check (Alcotest.float 1e-9) "all above 512B" 1.0 (Reuse_distance.fraction_above p ~bytes:512);
  check (Alcotest.float 1e-9) "none above 4KB" 0.0
    (Reuse_distance.fraction_above p ~bytes:4096)

let test_reuse_predicts_fully_assoc_lru =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"reuse distance predicts fully-associative LRU hits"
       QCheck.(list_of_size (Gen.int_range 50 400) (int_bound 63))
       (fun lines ->
         let trace = Array.of_list (List.map (fun l -> l * 64) lines) in
         let profile = Reuse_distance.analyze trace in
         (* Fully associative LRU with 16 lines = 1KB. *)
         let cache = Cache.create ~size_bytes:(16 * 64) ~ways:16 () in
         let hits = ref 0 in
         Array.iter (fun a -> if Cache.access cache a then incr hits) trace;
         let simulated = float_of_int !hits /. float_of_int (Array.length trace) in
         let predicted = Reuse_distance.hit_fraction profile ~capacity_bytes:(16 * 64) in
         Float.abs (simulated -. predicted) < 0.08))

(* --- Reuse model (Table 2) --- *)

let params = { Reuse_model.cores = 16; jobs_per_core = 4; array_bytes = 16 * 1024 }

let test_model_amplification () =
  check Alcotest.int "CT = C*J" 64 (Reuse_model.amplification ~framework:Pointer_chase.Ct params);
  check Alcotest.int "TLS = J" 4 (Reuse_model.amplification ~framework:Pointer_chase.Tls params)

let test_model_distances () =
  check Alcotest.int "CT first access" (64 * 16 * 1024)
    (Reuse_model.first_access_distance ~framework:Pointer_chase.Ct params);
  check Alcotest.int "TLS first access" (4 * 16 * 1024)
    (Reuse_model.first_access_distance ~framework:Pointer_chase.Tls params);
  check Alcotest.int "repeat access" (16 * 1024) (Reuse_model.repeat_access_distance params)

let test_model_predictions_match_paper () =
  (* Paper: CT sees L2 (1MB) misses from 16KB arrays (16KB*64 = 1MB);
     TLS not until 256KB (256KB*4 = 1MB). *)
  let l2 = 1024 * 1024 in
  let p_of kb = { params with array_bytes = kb * 1024 } in
  Alcotest.(check bool) "CT misses L2 at 16KB" true
    (Reuse_model.predict_miss ~framework:Pointer_chase.Ct ~capacity_bytes:l2 (p_of 16));
  Alcotest.(check bool) "TLS holds L2 at 16KB" false
    (Reuse_model.predict_miss ~framework:Pointer_chase.Tls ~capacity_bytes:l2 (p_of 16));
  Alcotest.(check bool) "TLS misses L2 at 256KB" true
    (Reuse_model.predict_miss ~framework:Pointer_chase.Tls ~capacity_bytes:l2 (p_of 256))

let test_model_fraction_first () =
  (* 16KB = 256 lines; quantum of 512 accesses covers the array twice:
     half the accesses are first-in-quantum. *)
  let f =
    Reuse_model.fraction_first_in_quantum ~quantum_accesses:512
      { params with array_bytes = 16 * 1024 }
  in
  check (Alcotest.float 1e-9) "fraction" 0.5 f;
  let f =
    Reuse_model.fraction_first_in_quantum ~quantum_accesses:100
      { params with array_bytes = 16 * 1024 }
  in
  check (Alcotest.float 1e-9) "capped at 1" 1.0 f

let suite =
  [
    Alcotest.test_case "cache hit after fill" `Quick test_cache_hit_after_fill;
    Alcotest.test_case "cache lru eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache lru touch" `Quick test_cache_lru_touch_protects;
    Alcotest.test_case "cache probe pure" `Quick test_cache_probe_pure;
    Alcotest.test_case "cache stats" `Quick test_cache_stats;
    Alcotest.test_case "cache geometry" `Quick test_cache_geometry_validation;
    Alcotest.test_case "cache capacity" `Quick test_cache_working_set_capacity;
    Alcotest.test_case "hierarchy ladder" `Quick test_hierarchy_latency_ladder;
    Alcotest.test_case "hierarchy l2 victims" `Quick test_hierarchy_l2_serves_l1_victims;
    Alcotest.test_case "hierarchy shared l3" `Quick test_hierarchy_shared_l3;
    Alcotest.test_case "chase small insensitive" `Quick test_chase_small_arrays_insensitive;
    Alcotest.test_case "chase midsize sensitive" `Quick test_chase_midsize_quantum_sensitive;
    Alcotest.test_case "chase ct worse" `Quick test_chase_ct_worse_than_tls;
    Alcotest.test_case "chase deterministic" `Quick test_chase_deterministic;
    Alcotest.test_case "reuse simple trace" `Quick test_reuse_simple_trace;
    Alcotest.test_case "reuse zero distance" `Quick test_reuse_zero_distance;
    Alcotest.test_case "reuse cyclic array" `Quick test_reuse_cyclic_array;
    Alcotest.test_case "reuse fraction above" `Quick test_reuse_fraction_above;
    test_reuse_predicts_fully_assoc_lru;
    Alcotest.test_case "model amplification" `Quick test_model_amplification;
    Alcotest.test_case "model distances" `Quick test_model_distances;
    Alcotest.test_case "model paper predictions" `Quick test_model_predictions_match_paper;
    Alcotest.test_case "model fraction first" `Quick test_model_fraction_first;
  ]
