(* Tests for tq_instrument: VM semantics, CI and TQ passes, Table 3
   evaluation machinery. *)

open Tq_ir
open Tq_instrument

let check = Alcotest.check

let prog_of ?(funcs = []) body =
  Lower.lower_program { Ast.src_funcs = ("main", body) :: funcs; src_main = "main" }

let run ?(quantum_cycles = max_int) ?(ci_check_clock = false) ?(seed = 3L) p =
  Vm.run { Vm.default_config with quantum_cycles; ci_check_clock; seed } p

(* --- VM semantics --- *)

let test_vm_straight_line_cycles () =
  let p = prog_of (Ast.work 10) in
  let r = run p in
  check Alcotest.int "10 alu = 10 cycles" 10 r.total_cycles;
  check Alcotest.int "10 instructions" 10 r.instructions;
  check Alcotest.int "no probes" 0 r.probe_executions

let test_vm_static_loop () =
  let p = prog_of (Ast.loop_n 5 (Ast.work 3)) in
  let r = run p in
  check Alcotest.int "5 x 3 alu" 15 r.total_cycles

let test_vm_nested_loops () =
  let p = prog_of (Ast.loop_n 4 (Ast.loop_n 6 (Ast.work 2))) in
  let r = run p in
  check Alcotest.int "4*6*2" 48 r.total_cycles

let test_vm_dynamic_loop_in_range () =
  let p = prog_of (Ast.loop_dyn ~lo:10 ~hi:20 (Ast.work 1)) in
  let r = run p in
  Alcotest.(check bool) "within range" true (r.total_cycles >= 10 && r.total_cycles <= 20)

let test_vm_branch_probabilities () =
  (* prob=1.0 must always take the then-branch. *)
  let p = prog_of (Ast.if_ ~prob:1.0 (Ast.work 7) (Ast.work 100)) in
  check Alcotest.int "then branch" 7 (run p).total_cycles;
  let p = prog_of (Ast.if_ ~prob:0.0 (Ast.work 100) (Ast.work 3)) in
  check Alcotest.int "else branch" 3 (run p).total_cycles

let test_vm_call_cost () =
  let p = prog_of ~funcs:[ ("h", Ast.work 5) ] (Ast.CallFn "h") in
  check Alcotest.int "call overhead + body" (Instr.Cost.call_overhead + 5) (run p).total_cycles

let test_vm_external_cost () =
  let p = prog_of (Ast.External { name = "syscall"; cycles = 250 }) in
  check Alcotest.int "external cycles" 250 (run p).total_cycles

let test_vm_div_cost () =
  let p = prog_of (Ast.mixed ~divs:2 ()) in
  check Alcotest.int "div cycles" (2 * Instr.Cost.div) (run p).total_cycles

let test_vm_deterministic () =
  let p = prog_of (Ast.loop_dyn ~lo:100 ~hi:500 (Ast.mixed ~alu:2 ~loads:2 ~miss_prob:0.3 ())) in
  let a = run ~seed:11L p and b = run ~seed:11L p in
  check Alcotest.int "same cycles" a.total_cycles b.total_cycles;
  let c = run ~seed:12L p in
  Alcotest.(check bool) "different seed differs" true (c.total_cycles <> a.total_cycles)

let test_vm_paired_control_flow () =
  (* Instrumented and uninstrumented runs must see identical work. *)
  let p =
    prog_of
      (Ast.loop_dyn ~lo:500 ~hi:1500
         (Ast.if_ ~prob:0.4
            (Ast.mixed ~alu:3 ~loads:2 ~miss_prob:0.2 ())
            (Ast.mixed ~alu:1 ~loads:1 ~miss_prob:0.2 ())))
  in
  let base = run ~seed:5L p in
  let instr = run ~seed:5L (Tq_pass.instrument p) in
  check Alcotest.int "identical work cycles" base.work_cycles instr.work_cycles;
  check Alcotest.int "identical instructions" base.instructions instr.instructions

(* --- CI pass --- *)

let test_ci_probe_every_block () =
  let p = prog_of (Ast.if_ ~prob:0.5 (Ast.work 5) (Ast.work 3)) in
  let ci = Ci_pass.instrument p in
  let f = Cfg.func_of_program ci "main" in
  (* then and else have instructions; entry and join are empty -> 2. *)
  check Alcotest.int "two probes" 2 (Cfg.probe_count f)

let test_ci_counter_adds_match_blocks () =
  let p = prog_of (Ast.seq [ Ast.work 4; Ast.if_ ~prob:0.5 (Ast.work 2) (Ast.work 9) ]) in
  let ci = Ci_pass.instrument p in
  let f = Cfg.func_of_program ci "main" in
  Array.iter
    (fun (b : Cfg.block) ->
      let plain =
        List.fold_left (fun acc i -> acc + Instr.instruction_weight i) 0 b.instrs
      in
      List.iter
        (function
          | Instr.Probe (Instr.Counter_probe { add }) ->
              check Alcotest.int "add equals block count" plain add
          | _ -> ())
        b.instrs)
    f.blocks

let test_ci_yields_near_threshold () =
  (* 10k alu instructions, quantum 1000 cycles, cpi 2.8: CI yields every
     ~357 instructions = ~357 cycles of work (alu cpi is 1.0): far too
     early, exactly the translation inaccuracy the paper describes. *)
  let p = prog_of (Ast.loop_n 100 (Ast.work 100)) in
  let ci = Ci_pass.instrument p in
  let r = run ~quantum_cycles:1000 ci in
  Alcotest.(check bool) "yields happened" true (r.yields > 0);
  let mean_interval =
    float_of_int (List.fold_left ( + ) 0 r.yield_intervals)
    /. float_of_int (List.length r.yield_intervals)
  in
  Alcotest.(check bool)
    (Printf.sprintf "yields early at ~threshold (%f)" mean_interval)
    true
    (mean_interval < 700.0)

let test_ci_cycles_never_early () =
  let p = prog_of (Ast.loop_n 200 (Ast.work 100)) in
  let ci = Ci_pass.instrument p in
  let r = run ~quantum_cycles:1000 ~ci_check_clock:true ci in
  Alcotest.(check bool) "yields happened" true (r.yields > 0);
  List.iter
    (fun i -> Alcotest.(check bool) "never below quantum" true (i >= 1000))
    r.yield_intervals

(* --- TQ pass --- *)

let test_tq_straight_line_probe_spacing () =
  (* 2000 straight-line instructions with bound 400: needs ~4 probes. *)
  let p = prog_of (Ast.work 2000) in
  let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
  let f = Cfg.func_of_program tq "main" in
  let probes = Cfg.probe_count f in
  Alcotest.(check bool) (Printf.sprintf "%d probes" probes) true (probes >= 4 && probes <= 6)

let test_tq_small_static_loop_unprobed () =
  (* Total work 10*5=50 <= bound: no instrumentation at all. *)
  let p = prog_of (Ast.loop_n 10 (Ast.work 5)) in
  let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
  check Alcotest.int "no probes" 0 (Cfg.program_probe_count tq)

let test_tq_long_loop_gets_loop_probe () =
  let p = prog_of (Ast.loop_n 10_000 (Ast.work 5)) in
  let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
  let f = Cfg.func_of_program tq "main" in
  let loop_probes =
    Array.to_list f.blocks
    |> List.concat_map (fun (b : Cfg.block) -> b.instrs)
    |> List.filter (function Instr.Probe (Instr.Loop_probe _) -> true | _ -> false)
  in
  check Alcotest.int "one loop probe" 1 (List.length loop_probes);
  match loop_probes with
  | [ Instr.Probe (Instr.Loop_probe { period; _ }) ] ->
      (* bound 400 / ~5 instrs per iteration -> period ~80. *)
      Alcotest.(check bool) (Printf.sprintf "period %d" period) true
        (period >= 60 && period <= 100)
  | _ -> assert false

let test_tq_sparser_than_ci () =
  List.iter
    (fun (named : Bench_programs.named) ->
      let p = Bench_programs.lowered named in
      let ci = Ci_pass.instrument p and tq = Tq_pass.instrument p in
      Alcotest.(check bool)
        (named.prog_name ^ ": tq static probes <= ci")
        true
        (Cfg.program_probe_count tq <= Cfg.program_probe_count ci))
    Bench_programs.all

let test_tq_yield_interval_bounded () =
  (* The pass bounds probe-free stretches, so overshoot past the quantum
     is limited; with bound=400 instructions and worst-case ~40-cycle
     instructions the slack stays well under the quantum itself. *)
  let quantum = 4200 in
  List.iter
    (fun (named : Bench_programs.named) ->
      let p = Bench_programs.lowered named in
      let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
      let r = run ~quantum_cycles:quantum tq in
      if r.yields > 3 then begin
        let sorted = List.sort compare r.yield_intervals in
        (* Use the median overshoot: single worst intervals may cross an
           expensive uninstrumented stretch (externals, final tail). *)
        let median = List.nth sorted (List.length sorted / 2) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: median interval %d vs quantum %d" named.prog_name median
             quantum)
          true
          (median >= quantum && median < 3 * quantum)
      end)
    Bench_programs.all

let test_tq_cloned_self_loop_skips_cost () =
  (* A self-loop with tiny runtime trip counts: the cloned version must
     execute no probe work at all. *)
  let body = Ast.loop_dyn ~lo:2 ~hi:4 (Ast.work 6) in
  let p = prog_of (Ast.loop_n 50 body) in
  let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
  let r = run tq in
  (* Inner loop can never reach its period; outer loop carries the probe.
     Probe cost must stay tiny relative to ~50*3*6 = 900+ work cycles. *)
  Alcotest.(check bool)
    (Printf.sprintf "probe cycles %d small" r.probe_cycles)
    true
    (r.probe_cycles * 10 < r.work_cycles)

let test_tq_call_heavy_uses_summaries () =
  (* A long always-probed callee lets the caller skip its own probes. *)
  let callee = Ast.loop_n 10_000 (Ast.work 5) in
  let p = prog_of ~funcs:[ ("big", callee) ] (Ast.loop_n 1000 (Ast.CallFn "big")) in
  let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
  let main = Cfg.func_of_program tq "main" in
  (* main's loop body is just the call; the callee's loop probe covers
     it, so main needs at most one probe. *)
  Alcotest.(check bool) "main barely instrumented" true (Cfg.probe_count main <= 1)

let test_tq_summary_fields () =
  let p = prog_of (Ast.work 2000) in
  let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
  let f = Cfg.func_of_program tq "main" in
  let s = Tq_pass.summarize [] f in
  Alcotest.(check bool) "always probed" true s.Tq_pass.always_probed;
  Alcotest.(check bool) "prefix bounded" true (s.Tq_pass.max_prefix <= 400);
  Alcotest.(check bool) "suffix bounded" true (s.Tq_pass.max_suffix <= 400)

let test_tq_unprobed_summary () =
  let p = prog_of (Ast.work 50) in
  let tq = Tq_pass.instrument ~config:{ Tq_pass.bound = 400; non_reentrant = [] } p in
  let s = Tq_pass.summarize [] (Cfg.func_of_program tq "main") in
  Alcotest.(check bool) "not always probed" false s.Tq_pass.always_probed;
  check Alcotest.int "prefix is whole body" 50 s.Tq_pass.max_prefix

let test_tq_rejects_bad_bound () =
  let p = prog_of (Ast.work 5) in
  Alcotest.check_raises "bound 0" (Invalid_argument "Tq_pass.instrument: bound must be positive")
    (fun () -> ignore (Tq_pass.instrument ~config:{ Tq_pass.bound = 0; non_reentrant = [] } p))

let test_passes_do_not_mutate_input () =
  let p = prog_of (Ast.loop_n 10_000 (Ast.work 5)) in
  let before = Cfg.program_probe_count p in
  ignore (Tq_pass.instrument p);
  ignore (Ci_pass.instrument p);
  check Alcotest.int "input untouched" before (Cfg.program_probe_count p)

(* --- Random program property tests --- *)

let gen_ast =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (4, map (fun n -> Ast.work (n + 1)) (int_bound 30));
        (2, return (Ast.mixed ~alu:3 ~loads:2 ~miss_prob:0.1 ~stores:1 ()));
        (1, return (Ast.External { name = "ext"; cycles = 50 }));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 2,
            map2
              (fun a b -> Ast.if_ ~prob:0.5 a b)
              (node (depth - 1))
              (node (depth - 1)) );
          ( 2,
            map2
              (fun n body -> Ast.loop_n (n + 1) body)
              (int_bound 30)
              (node (depth - 1)) );
          ( 1,
            map2
              (fun n body -> Ast.loop_dyn ~lo:1 ~hi:(n + 2) body)
              (int_bound 60)
              (node (depth - 1)) );
          (1, map (fun l -> Ast.seq l) (list_size (int_range 1 3) (node (depth - 1))));
        ]
  in
  node 4

let arb_ast = QCheck.make ~print:(fun _ -> "<ast>") gen_ast

let test_random_programs_instrumentable =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random programs: passes valid, VM total preserved"
       arb_ast (fun ast ->
         let p = prog_of ast in
         let tq = Tq_pass.instrument p in
         let ci = Ci_pass.instrument p in
         Cfg.validate tq;
         Cfg.validate ci;
         let base = run ~seed:9L p in
         let tq_r = run ~seed:9L tq in
         let ci_r = run ~seed:9L ci in
         (* Identical control flow => identical work. *)
         base.work_cycles = tq_r.work_cycles
         && base.work_cycles = ci_r.work_cycles
         && tq_r.total_cycles >= base.total_cycles
         && ci_r.total_cycles >= base.total_cycles))

let test_random_programs_tq_yields =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"random long programs: TQ-instrumented yields when run >> quantum" arb_ast
       (fun ast ->
         (* Wrap in a big outer loop so programs run long enough. *)
         let p = prog_of (Ast.loop_n 300 ast) in
         let tq = Tq_pass.instrument p in
         let base = run ~seed:13L p in
         let quantum = 2000 in
         if base.total_cycles > 30 * quantum then begin
           let r = run ~seed:13L ~quantum_cycles:quantum tq in
           r.yields > 0
         end
         else true))

(* --- Evaluate --- *)

let test_evaluate_row_sane () =
  let row = Evaluate.evaluate (Option.get (Bench_programs.find "histogram")) in
  Alcotest.(check bool) "base cycles positive" true (row.base_cycles > 0);
  Alcotest.(check bool) "tq overhead < ci overhead" true
    (row.tq_overhead_pct < row.ci_overhead_pct);
  Alcotest.(check bool) "overheads nonnegative" true
    (row.tq_overhead_pct >= 0.0 && row.ci_overhead_pct >= 0.0);
  Alcotest.(check bool) "MAEs finite" true
    (Float.is_finite row.tq_mae_ns && Float.is_finite row.ci_mae_ns)

let test_table3_means_ordering () =
  (* The paper's headline: TQ reduces both mean probing overhead and mean
     MAE relative to CI. Evaluate a subset to keep the test fast. *)
  let subset =
    List.filteri (fun i _ -> i mod 4 = 0) Bench_programs.all
    |> List.map (fun p -> Evaluate.evaluate p)
  in
  let m = Evaluate.means subset in
  Alcotest.(check bool) "mean overhead: tq < ci" true
    (m.Evaluate.mean_tq_overhead < m.Evaluate.mean_ci_overhead);
  Alcotest.(check bool) "mean MAE: tq < ci" true
    (m.Evaluate.mean_tq_mae < m.Evaluate.mean_ci_mae)

let test_rocksdb_get_magnitude () =
  let p = Bench_programs.lowered Bench_programs.rocksdb_get in
  let r = run ~seed:21L p in
  let us = float_of_int r.total_cycles /. 2100.0 in
  Alcotest.(check bool) (Printf.sprintf "GET ~2us (got %.2f)" us) true (us > 1.0 && us < 4.0)

let test_rocksdb_scan_magnitude () =
  let p = Bench_programs.lowered Bench_programs.rocksdb_scan in
  let r = run ~seed:21L p in
  let us = float_of_int r.total_cycles /. 2100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "SCAN ~675us (got %.0f)" us)
    true
    (us > 450.0 && us < 900.0)

let test_rocksdb_get_probe_ratio () =
  (* Section 3.1: TQ instruments far fewer probes than CI on the GET. *)
  let p = Bench_programs.lowered Bench_programs.rocksdb_get in
  let ci = Ci_pass.instrument p and tq = Tq_pass.instrument p in
  let q = 4200 in
  let ci_r = run ~seed:21L ~quantum_cycles:q ci in
  let tq_r = run ~seed:21L ~quantum_cycles:q tq in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic probes: ci %d >> tq %d" ci_r.probe_executions
       tq_r.probe_executions)
    true
    (ci_r.probe_executions > 20 * max 1 tq_r.probe_executions)

let suite =
  [
    Alcotest.test_case "vm straight line" `Quick test_vm_straight_line_cycles;
    Alcotest.test_case "vm static loop" `Quick test_vm_static_loop;
    Alcotest.test_case "vm nested loops" `Quick test_vm_nested_loops;
    Alcotest.test_case "vm dynamic loop" `Quick test_vm_dynamic_loop_in_range;
    Alcotest.test_case "vm branch probs" `Quick test_vm_branch_probabilities;
    Alcotest.test_case "vm call cost" `Quick test_vm_call_cost;
    Alcotest.test_case "vm external cost" `Quick test_vm_external_cost;
    Alcotest.test_case "vm div cost" `Quick test_vm_div_cost;
    Alcotest.test_case "vm deterministic" `Quick test_vm_deterministic;
    Alcotest.test_case "vm paired control flow" `Quick test_vm_paired_control_flow;
    Alcotest.test_case "ci probe every block" `Quick test_ci_probe_every_block;
    Alcotest.test_case "ci counter adds" `Quick test_ci_counter_adds_match_blocks;
    Alcotest.test_case "ci yields near threshold" `Quick test_ci_yields_near_threshold;
    Alcotest.test_case "ci-cycles never early" `Quick test_ci_cycles_never_early;
    Alcotest.test_case "tq straight-line spacing" `Quick test_tq_straight_line_probe_spacing;
    Alcotest.test_case "tq small loop unprobed" `Quick test_tq_small_static_loop_unprobed;
    Alcotest.test_case "tq loop probe period" `Quick test_tq_long_loop_gets_loop_probe;
    Alcotest.test_case "tq sparser than ci" `Quick test_tq_sparser_than_ci;
    Alcotest.test_case "tq yield interval bounded" `Quick test_tq_yield_interval_bounded;
    Alcotest.test_case "tq cloned self loop" `Quick test_tq_cloned_self_loop_skips_cost;
    Alcotest.test_case "tq call summaries" `Quick test_tq_call_heavy_uses_summaries;
    Alcotest.test_case "tq summary fields" `Quick test_tq_summary_fields;
    Alcotest.test_case "tq unprobed summary" `Quick test_tq_unprobed_summary;
    Alcotest.test_case "tq rejects bad bound" `Quick test_tq_rejects_bad_bound;
    Alcotest.test_case "passes pure" `Quick test_passes_do_not_mutate_input;
    test_random_programs_instrumentable;
    test_random_programs_tq_yields;
    Alcotest.test_case "evaluate row sane" `Quick test_evaluate_row_sane;
    Alcotest.test_case "table3 means ordering" `Quick test_table3_means_ordering;
    Alcotest.test_case "rocksdb get magnitude" `Quick test_rocksdb_get_magnitude;
    Alcotest.test_case "rocksdb scan magnitude" `Quick test_rocksdb_scan_magnitude;
    Alcotest.test_case "rocksdb get probe ratio" `Quick test_rocksdb_get_probe_ratio;
  ]
