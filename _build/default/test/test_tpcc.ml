(* Tests for tq_tpcc: schema integrity and transaction invariants. *)

open Tq_tpcc
module Prng = Tq_util.Prng

let check = Alcotest.check
let fresh_db () = Schema.create ~seed:9L ()

let test_initial_load () =
  let db = fresh_db () in
  let sc = Schema.scale db in
  check Alcotest.int "warehouses" 2 sc.warehouses;
  let w = Schema.warehouse db ~w:0 in
  check Alcotest.int "ytd starts 0" 0 w.w_ytd;
  let d = Schema.district db ~w:1 ~d:9 in
  check Alcotest.int "next order id" 1 d.d_next_o_id;
  let s = Schema.stock db ~w:0 ~i:0 in
  Alcotest.(check bool) "stock in range" true (s.s_quantity >= 10 && s.s_quantity <= 100);
  let i = Schema.item db ~i:500 in
  Alcotest.(check bool) "price in range" true (i.i_price >= 100 && i.i_price <= 10_000)

let test_bad_ids_rejected () =
  let db = fresh_db () in
  Alcotest.check_raises "bad warehouse" Not_found (fun () ->
      ignore (Schema.warehouse db ~w:99));
  Alcotest.check_raises "bad customer" Not_found (fun () ->
      ignore (Schema.customer db ~w:0 ~d:0 ~c:1000))

let test_new_order_effects () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:1L in
  match Transactions.new_order db rng ~now_ns:42 with
  | Transactions.Ordered { o_id; total } ->
      check Alcotest.int "first order id" 1 o_id;
      Alcotest.(check bool) "positive total" true (total > 0);
      (* Exactly one district advanced its counter and queued the order. *)
      let advanced = ref 0 and queued = ref 0 in
      for w = 0 to 1 do
        for d = 0 to 9 do
          if (Schema.district db ~w ~d).d_next_o_id = 2 then incr advanced;
          queued := !queued + Schema.new_order_depth db ~w ~d
        done
      done;
      check Alcotest.int "one district advanced" 1 !advanced;
      check Alcotest.int "one new-order entry" 1 !queued
  | _ -> Alcotest.fail "expected Ordered"

let test_new_order_lines_match_total () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:2L in
  match Transactions.new_order db rng ~now_ns:0 with
  | Transactions.Ordered { o_id; total } ->
      (* Find the order and re-sum its lines. *)
      let found = ref false in
      for w = 0 to 1 do
        for d = 0 to 9 do
          match Schema.order db ~w ~d ~o:o_id with
          | Some order when not !found ->
              found := true;
              let sum = ref 0 in
              for ol = 0 to order.o_ol_cnt - 1 do
                match Schema.order_line db ~w ~d ~o:o_id ~ol with
                | Some line ->
                    Alcotest.(check bool) "undelivered" false line.ol_delivered;
                    sum := !sum + line.ol_amount
                | None -> Alcotest.fail "missing order line"
              done;
              check Alcotest.int "lines sum to total" total !sum
          | _ -> ()
        done
      done;
      Alcotest.(check bool) "order found" true !found
  | _ -> Alcotest.fail "expected Ordered"

let test_payment_conservation () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:3L in
  let paid = ref 0 in
  for _ = 1 to 200 do
    match Transactions.payment db rng with
    | Transactions.Paid { amount } -> paid := !paid + amount
    | _ -> Alcotest.fail "expected Paid"
  done;
  let warehouse_ytd = (Schema.warehouse db ~w:0).w_ytd + (Schema.warehouse db ~w:1).w_ytd in
  check Alcotest.int "warehouse ytd = sum payments" !paid warehouse_ytd;
  let district_ytd = ref 0 in
  for w = 0 to 1 do
    for d = 0 to 9 do
      district_ytd := !district_ytd + (Schema.district db ~w ~d).d_ytd
    done
  done;
  check Alcotest.int "district ytd = sum payments" !paid !district_ytd

let test_delivery_drains_queue () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:4L in
  for _ = 1 to 50 do
    ignore (Transactions.new_order db rng ~now_ns:0)
  done;
  let pending w =
    let total = ref 0 in
    for d = 0 to 9 do
      total := !total + Schema.new_order_depth db ~w ~d
    done;
    !total
  in
  let before = pending 0 + pending 1 in
  check Alcotest.int "fifty pending" 50 before;
  match Transactions.delivery db rng with
  | Transactions.Delivered { orders } ->
      Alcotest.(check bool) "delivered some" true (orders > 0);
      check Alcotest.int "queue drained by that many" (before - orders) (pending 0 + pending 1)
  | _ -> Alcotest.fail "expected Delivered"

let test_delivery_credits_customer () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:5L in
  (* Total customer balance starts at 0; new orders do not change it,
     deliveries credit line totals. *)
  for _ = 1 to 30 do
    ignore (Transactions.new_order db rng ~now_ns:0)
  done;
  let total_balance () =
    let acc = ref 0 in
    for w = 0 to 1 do
      for d = 0 to 9 do
        for c = 0 to 99 do
          acc := !acc + (Schema.customer db ~w ~d ~c).c_balance
        done
      done
    done;
    !acc
  in
  check Alcotest.int "balance zero before delivery" 0 (total_balance ());
  (match Transactions.delivery db rng with
  | Transactions.Delivered { orders } -> Alcotest.(check bool) "delivered" true (orders > 0)
  | _ -> Alcotest.fail "expected Delivered");
  Alcotest.(check bool) "balances credited" true (total_balance () > 0)

let test_order_status_after_delivery () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:6L in
  for _ = 1 to 100 do
    ignore (Transactions.new_order db rng ~now_ns:0)
  done;
  (* Every order is undelivered at this point. *)
  (match Transactions.order_status db rng with
  | Transactions.Status { last_order = Some _; undelivered_lines } ->
      Alcotest.(check bool) "some undelivered lines" true (undelivered_lines > 0)
  | Transactions.Status { last_order = None; _ } -> () (* customer without orders *)
  | _ -> Alcotest.fail "expected Status");
  (* Deliver everything, then every status query reports zero. *)
  for _ = 1 to 200 do
    ignore (Transactions.delivery db rng)
  done;
  for _ = 1 to 20 do
    match Transactions.order_status db rng with
    | Transactions.Status { undelivered_lines; _ } ->
        check Alcotest.int "no undelivered lines" 0 undelivered_lines
    | _ -> Alcotest.fail "expected Status"
  done

let test_stock_level_counts () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:7L in
  for _ = 1 to 50 do
    ignore (Transactions.new_order db rng ~now_ns:0)
  done;
  match Transactions.stock_level db rng with
  | Transactions.Stock_low { count } -> Alcotest.(check bool) "count sane" true (count >= 0)
  | _ -> Alcotest.fail "expected Stock_low"

let test_stock_never_negative () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:8L in
  for _ = 1 to 500 do
    ignore (Transactions.new_order db rng ~now_ns:0)
  done;
  let sc = Schema.scale db in
  for w = 0 to sc.warehouses - 1 do
    for i = 0 to sc.items - 1 do
      Alcotest.(check bool) "stock >= 0" true ((Schema.stock db ~w ~i).s_quantity >= 0)
    done
  done

let test_mix_ratios () =
  let rng = Prng.create ~seed:10L in
  let counts = Hashtbl.create 5 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Transactions.sample_kind rng in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let frac k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. float_of_int n in
  Alcotest.(check bool) "payment ~44%" true (Float.abs (frac Transactions.Payment -. 0.44) < 0.01);
  Alcotest.(check bool) "new order ~44%" true
    (Float.abs (frac Transactions.New_order -. 0.44) < 0.01);
  Alcotest.(check bool) "delivery ~4%" true
    (Float.abs (frac Transactions.Delivery -. 0.04) < 0.005)

let test_service_times_match_table1 () =
  check Alcotest.int "payment" 5_700 (Transactions.service_time_ns Transactions.Payment);
  check Alcotest.int "order status" 6_000
    (Transactions.service_time_ns Transactions.Order_status);
  check Alcotest.int "new order" 20_000 (Transactions.service_time_ns Transactions.New_order);
  check Alcotest.int "delivery" 88_000 (Transactions.service_time_ns Transactions.Delivery);
  check Alcotest.int "stock level" 100_000
    (Transactions.service_time_ns Transactions.Stock_level)

let test_run_dispatch () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:11L in
  (match Transactions.run db rng Transactions.Payment ~now_ns:0 with
  | Transactions.Paid _ -> ()
  | _ -> Alcotest.fail "dispatch payment");
  match Transactions.run db rng Transactions.New_order ~now_ns:0 with
  | Transactions.Ordered _ -> ()
  | _ -> Alcotest.fail "dispatch new order"

let suite =
  [
    Alcotest.test_case "initial load" `Quick test_initial_load;
    Alcotest.test_case "bad ids" `Quick test_bad_ids_rejected;
    Alcotest.test_case "new order effects" `Quick test_new_order_effects;
    Alcotest.test_case "order lines total" `Quick test_new_order_lines_match_total;
    Alcotest.test_case "payment conservation" `Quick test_payment_conservation;
    Alcotest.test_case "delivery drains queue" `Quick test_delivery_drains_queue;
    Alcotest.test_case "delivery credits customer" `Quick test_delivery_credits_customer;
    Alcotest.test_case "order status" `Quick test_order_status_after_delivery;
    Alcotest.test_case "stock level" `Quick test_stock_level_counts;
    Alcotest.test_case "stock never negative" `Quick test_stock_never_negative;
    Alcotest.test_case "mix ratios" `Quick test_mix_ratios;
    Alcotest.test_case "service times" `Quick test_service_times_match_table1;
    Alcotest.test_case "run dispatch" `Quick test_run_dispatch;
  ]

(* --- Consistency checker --- *)

let test_consistency_clean_db () =
  let db = fresh_db () in
  check Alcotest.(list string) "fresh db consistent" [] (Consistency.check db)

let test_consistency_after_mixed_load () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:31L in
  for _ = 1 to 2_000 do
    let kind = Transactions.sample_kind rng in
    ignore (Transactions.run db rng kind ~now_ns:0)
  done;
  check Alcotest.(list string) "consistent after 2000 transactions" []
    (Consistency.check db);
  Consistency.check_exn db

let test_consistency_detects_corruption () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:32L in
  for _ = 1 to 50 do
    ignore (Transactions.new_order db rng ~now_ns:0)
  done;
  (* Corrupt: bump a warehouse YTD without touching districts. *)
  let w0 = Schema.warehouse db ~w:0 in
  w0.w_ytd <- w0.w_ytd + 1;
  Alcotest.(check bool) "violation reported" true (Consistency.check db <> []);
  Alcotest.(check bool) "check_exn raises" true
    (try
       Consistency.check_exn db;
       false
     with Failure _ -> true)

let consistency_suite =
  [
    Alcotest.test_case "consistency clean" `Quick test_consistency_clean_db;
    Alcotest.test_case "consistency after load" `Quick test_consistency_after_mixed_load;
    Alcotest.test_case "consistency detects corruption" `Quick
      test_consistency_detects_corruption;
  ]

let suite = suite @ consistency_suite

(* --- NURand and last-name selection --- *)

let test_nurand_bounds () =
  let rng = Prng.create ~seed:41L in
  for _ = 1 to 10_000 do
    let v = Nurand.nurand rng ~a:255 ~x:10 ~y:20 ~c:7 in
    Alcotest.(check bool) "in range" true (v >= 10 && v <= 20)
  done

let test_nurand_skewed () =
  (* NURand concentrates mass: the most popular value should be drawn
     noticeably more often than uniform. *)
  let rng = Prng.create ~seed:43L in
  let n = 100 in
  let counts = Array.make n 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let v = Nurand.nurand rng ~a:1023 ~x:0 ~y:(n - 1) ~c:259 mod n in
    counts.(v) <- counts.(v) + 1
  done;
  let max_count = Array.fold_left max 0 counts in
  let uniform = draws / n in
  Alcotest.(check bool)
    (Printf.sprintf "hottest %d vs uniform %d" max_count uniform)
    true
    (max_count > 2 * uniform)

let test_last_name_syllables () =
  check Alcotest.string "0" "BARBARBAR" (Nurand.last_name 0);
  check Alcotest.string "371" "PRICALLYOUGHT" (Nurand.last_name 371);
  check Alcotest.string "999" "EINGEINGEING" (Nurand.last_name 999);
  Alcotest.check_raises "range" (Invalid_argument "Nurand.last_name: n in [0, 999]")
    (fun () -> ignore (Nurand.last_name 1000))

let test_customers_by_last_name () =
  let db = fresh_db () in
  (* Customer c carries last_name (c mod 1000); with 100 customers every
     name below 100 maps to exactly one id. *)
  let name = Nurand.last_name 42 in
  check Alcotest.(list int) "index finds the row" [ 42 ]
    (Schema.customers_by_last_name db ~w:0 ~d:0 name);
  check Alcotest.(list int) "missing name" []
    (Schema.customers_by_last_name db ~w:1 ~d:3 (Nurand.last_name 500))

let test_payment_by_name_touches_named_customer () =
  let db = fresh_db () in
  let rng = Prng.create ~seed:47L in
  (* Run many payments; customers selected by name must exist, so total
     payment counts equal the number of transactions. *)
  let n = 500 in
  for _ = 1 to n do
    match Transactions.payment db rng with
    | Transactions.Paid _ -> ()
    | _ -> Alcotest.fail "expected Paid"
  done;
  let total_payments = ref 0 in
  for w = 0 to 1 do
    for d = 0 to 9 do
      for c = 0 to 99 do
        total_payments := !total_payments + (Schema.customer db ~w ~d ~c).c_payment_cnt
      done
    done
  done;
  check Alcotest.int "every payment landed on a real customer" n !total_payments

let test_item_popularity_skewed () =
  (* NURand item selection concentrates orders on hot items. *)
  let db = fresh_db () in
  let rng = Prng.create ~seed:49L in
  for _ = 1 to 400 do
    ignore (Transactions.new_order db rng ~now_ns:0)
  done;
  let sc = Schema.scale db in
  let counts = Array.init sc.items (fun i -> (Schema.stock db ~w:0 ~i).s_order_cnt) in
  Array.sort compare counts;
  let hottest = counts.(sc.items - 1) in
  let total = Array.fold_left ( + ) 0 counts in
  let uniform = float_of_int total /. float_of_int sc.items in
  Alcotest.(check bool)
    (Printf.sprintf "hottest item %d vs uniform %.1f" hottest uniform)
    true
    (float_of_int hottest > 3.0 *. uniform)

let nurand_suite =
  [
    Alcotest.test_case "nurand bounds" `Quick test_nurand_bounds;
    Alcotest.test_case "nurand skewed" `Quick test_nurand_skewed;
    Alcotest.test_case "last name syllables" `Quick test_last_name_syllables;
    Alcotest.test_case "customers by last name" `Quick test_customers_by_last_name;
    Alcotest.test_case "payment by name" `Quick test_payment_by_name_touches_named_customer;
    Alcotest.test_case "item popularity skewed" `Quick test_item_popularity_skewed;
  ]

let suite = suite @ nurand_suite
