(* Tests for tq_kv: skip list, SSTables, the LSM store. *)

open Tq_kv

let check = Alcotest.check

(* --- Skiplist --- *)

let test_skiplist_insert_find () =
  let sl = Skiplist.create () in
  Skiplist.insert sl "b" 2;
  Skiplist.insert sl "a" 1;
  Skiplist.insert sl "c" 3;
  check Alcotest.(option int) "find a" (Some 1) (Skiplist.find sl "a");
  check Alcotest.(option int) "find c" (Some 3) (Skiplist.find sl "c");
  check Alcotest.(option int) "missing" None (Skiplist.find sl "z");
  check Alcotest.int "length" 3 (Skiplist.length sl)

let test_skiplist_overwrite () =
  let sl = Skiplist.create () in
  Skiplist.insert sl "k" 1;
  Skiplist.insert sl "k" 2;
  check Alcotest.(option int) "overwritten" (Some 2) (Skiplist.find sl "k");
  check Alcotest.int "length unchanged" 1 (Skiplist.length sl)

let test_skiplist_sorted_iteration () =
  let sl = Skiplist.create () in
  List.iter (fun k -> Skiplist.insert sl k 0) [ "d"; "a"; "c"; "b"; "e" ];
  check
    Alcotest.(list string)
    "sorted" [ "a"; "b"; "c"; "d"; "e" ]
    (List.map fst (Skiplist.to_sorted_list sl))

let test_skiplist_iter_from () =
  let sl = Skiplist.create () in
  List.iter (fun k -> Skiplist.insert sl k 0) [ "a"; "b"; "c"; "d" ];
  let seen = ref [] in
  Skiplist.iter_from sl "b" (fun k _ ->
      seen := k :: !seen;
      List.length !seen < 2);
  check Alcotest.(list string) "from b, two entries" [ "b"; "c" ] (List.rev !seen)

let test_skiplist_min_max () =
  let sl = Skiplist.create () in
  check Alcotest.(option (pair string int)) "empty min" None (Skiplist.min_binding sl);
  List.iter (fun k -> Skiplist.insert sl k 0) [ "m"; "a"; "z" ];
  check Alcotest.(option (pair string int)) "min" (Some ("a", 0)) (Skiplist.min_binding sl);
  check Alcotest.(option (pair string int)) "max" (Some ("z", 0)) (Skiplist.max_binding sl)

let test_skiplist_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"skiplist matches Map model"
       QCheck.(list (pair (string_of_size (Gen.int_range 1 6)) small_int))
       (fun bindings ->
         let module M = Stdlib.Map.Make (String) in
         let sl = Skiplist.create () in
         let model =
           List.fold_left
             (fun m (k, v) ->
               Skiplist.insert sl k v;
               M.add k v m)
             M.empty bindings
         in
         M.for_all (fun k v -> Skiplist.find sl k = Some v) model
         && Skiplist.length sl = M.cardinal model
         && List.map fst (Skiplist.to_sorted_list sl) = List.map fst (M.bindings model)))

let test_skiplist_tracer () =
  let sl = Skiplist.create () in
  for i = 0 to 99 do
    Skiplist.insert sl (Printf.sprintf "%03d" i) i
  done;
  let touched = ref [] in
  Skiplist.set_tracer sl (Some (fun addr -> touched := addr :: !touched));
  ignore (Skiplist.find sl "050");
  Alcotest.(check bool) "lookup touched nodes" true (List.length !touched > 0);
  List.iter
    (fun addr -> Alcotest.(check bool) "aligned" true (addr mod 64 = 0))
    !touched

(* --- Sstable --- *)

let sorted_run l = Sstable.of_sorted ~base_address:0 l

let test_sstable_find () =
  let run = sorted_run [ ("a", 1); ("c", 3); ("e", 5) ] in
  check Alcotest.(option int) "hit" (Some 3) (Sstable.find run "c");
  check Alcotest.(option int) "miss between" None (Sstable.find run "b");
  check Alcotest.(option int) "miss after" None (Sstable.find run "z");
  check Alcotest.int "length" 3 (Sstable.length run)

let test_sstable_rejects_unsorted () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (sorted_run [ ("b", 1); ("a", 2) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicates rejected" true
    (try
       ignore (sorted_run [ ("a", 1); ("a", 2) ]);
       false
     with Invalid_argument _ -> true)

let test_sstable_iter_from () =
  let run = sorted_run [ ("a", 1); ("c", 3); ("e", 5) ] in
  let seen = ref [] in
  Sstable.iter_from run "b" (fun k v ->
      seen := (k, v) :: !seen;
      true);
  check Alcotest.(list (pair string int)) "from b" [ ("c", 3); ("e", 5) ] (List.rev !seen)

let test_sstable_merge_newest_wins () =
  let newest = [ ("a", 10); ("b", 20) ] in
  let oldest = [ ("a", 1); ("c", 3) ] in
  check
    Alcotest.(list (pair string int))
    "merged" [ ("a", 10); ("b", 20); ("c", 3) ]
    (Sstable.merge [ newest; oldest ])

let test_sstable_merge_many () =
  let r1 = [ ("b", 1) ] and r2 = [ ("a", 2) ] and r3 = [ ("c", 3); ("d", 4) ] in
  check
    Alcotest.(list (pair string int))
    "three runs" [ ("a", 2); ("b", 1); ("c", 3); ("d", 4) ]
    (Sstable.merge [ r1; r2; r3 ])

(* --- Store --- *)

let small_config = { Store.memtable_limit = 64; max_runs = 3; seed = 1L }

let test_store_get_put () =
  let s = Store.create ~config:small_config () in
  Store.put s "k1" "v1";
  Store.put s "k2" "v2";
  check Alcotest.(option string) "get k1" (Some "v1") (Store.get s "k1");
  check Alcotest.(option string) "missing" None (Store.get s "nope")

let test_store_overwrite_across_flushes () =
  let s = Store.create ~config:small_config () in
  (* 200 distinct keys force flushes (limit 64); then overwrite an old
     key so the fresh memtable shadows the run holding it. *)
  for i = 0 to 199 do
    Store.put s (Printf.sprintf "key%04d" i) "old"
  done;
  Alcotest.(check bool) "flushed at least once" true (Store.flushes s > 0);
  Store.put s "key0000" "new";
  check Alcotest.(option string) "newest wins" (Some "new") (Store.get s "key0000");
  check Alcotest.(option string) "others intact" (Some "old") (Store.get s "key0123")

let test_store_scan_merges_sources () =
  let s = Store.create ~config:small_config () in
  for i = 0 to 299 do
    Store.put s (Printf.sprintf "key%04d" i) (string_of_int i)
  done;
  let result = Store.scan s ~start:"key0100" ~limit:5 in
  check
    Alcotest.(list (pair string string))
    "five ascending"
    [
      ("key0100", "100");
      ("key0101", "101");
      ("key0102", "102");
      ("key0103", "103");
      ("key0104", "104");
    ]
    result

let test_store_scan_sees_fresh_memtable () =
  let s = Store.create ~config:small_config () in
  for i = 0 to 99 do
    Store.put s (Printf.sprintf "key%04d" i) "old"
  done;
  Store.put s "key0000" "new";
  (match Store.scan s ~start:"key0000" ~limit:1 with
  | [ ("key0000", v) ] -> check Alcotest.string "memtable shadows run" "new" v
  | _ -> Alcotest.fail "expected one binding");
  check Alcotest.(list (pair string string)) "empty scan" []
    (Store.scan s ~start:"zzz" ~limit:10)

let test_store_compaction_caps_runs () =
  let s = Store.create ~config:small_config () in
  for i = 0 to 999 do
    Store.put s (Printf.sprintf "key%06d" i) "x"
  done;
  Alcotest.(check bool) "compacted" true (Store.compactions s > 0);
  Alcotest.(check bool) "runs capped" true (Store.run_count s <= small_config.max_runs)

let test_store_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"store matches Map model across flush/compact"
       QCheck.(list (pair (int_bound 80) (string_of_size (Gen.int_range 1 4))))
       (fun ops ->
         let config = { Store.memtable_limit = 16; max_runs = 2; seed = 2L } in
         let s = Store.create ~config () in
         let module M = Stdlib.Map.Make (String) in
         let model =
           List.fold_left
             (fun m (k, v) ->
               let key = Printf.sprintf "k%03d" k in
               Store.put s key v;
               M.add key v m)
             M.empty ops
         in
         M.for_all (fun k v -> Store.get s k = Some v) model))

(* --- Bloom filter --- *)

let test_bloom_no_false_negatives =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"bloom: no false negatives"
       QCheck.(list_of_size (Gen.int_range 1 200) (string_of_size (Gen.int_range 1 10)))
       (fun keys ->
         let b = Bloom.of_keys keys in
         List.for_all (Bloom.mem b) keys))

let test_bloom_fpr_bounded () =
  let keys = List.init 5_000 (fun i -> Printf.sprintf "present%06d" i) in
  let b = Bloom.of_keys keys in
  let false_positives = ref 0 in
  let probes = 20_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "absent%06d" i) then incr false_positives
  done;
  let fpr = float_of_int !false_positives /. float_of_int probes in
  let predicted = Bloom.estimated_fpr b ~entries:5_000 in
  Alcotest.(check bool)
    (Printf.sprintf "fpr %.4f ~ predicted %.4f" fpr predicted)
    true
    (fpr < 3.0 *. predicted +. 0.01)

let test_bloom_rejects_bad_args () =
  Alcotest.check_raises "negative entries" (Invalid_argument "Bloom.create") (fun () ->
      ignore (Bloom.create ~expected_entries:(-1) ()))

(* --- deletes / tombstones --- *)

let test_store_delete_basic () =
  let s = Store.create ~config:small_config () in
  Store.put s "k" "v";
  Store.delete s "k";
  check Alcotest.(option string) "deleted" None (Store.get s "k");
  Alcotest.(check bool) "mem false" false (Store.mem s "k");
  Store.put s "k" "v2";
  check Alcotest.(option string) "resurrected" (Some "v2") (Store.get s "k")

let test_store_delete_shadows_runs () =
  let s = Store.create ~config:small_config () in
  for i = 0 to 199 do
    Store.put s (Printf.sprintf "key%04d" i) "v"
  done;
  Alcotest.(check bool) "flushed" true (Store.flushes s > 0);
  Store.delete s "key0003";
  check Alcotest.(option string) "tombstone shadows run value" None (Store.get s "key0003");
  (* Scans must skip the deleted key but still return [limit] live ones. *)
  let keys = List.map fst (Store.scan s ~start:"key0000" ~limit:5) in
  check
    Alcotest.(list string)
    "scan skips tombstone"
    [ "key0000"; "key0001"; "key0002"; "key0004"; "key0005" ]
    keys

let test_store_compaction_drops_tombstones () =
  let config = { Store.memtable_limit = 32; max_runs = 2; seed = 4L } in
  let s = Store.create ~config () in
  for i = 0 to 99 do
    Store.put s (Printf.sprintf "key%04d" i) "v"
  done;
  for i = 0 to 99 do
    Store.delete s (Printf.sprintf "key%04d" i)
  done;
  (* Drive enough churn for a full compaction after the deletes. *)
  for i = 100 to 299 do
    Store.put s (Printf.sprintf "key%04d" i) "v"
  done;
  Alcotest.(check bool) "compacted" true (Store.compactions s > 0);
  check Alcotest.(option string) "still deleted" None (Store.get s "key0050");
  (* After full compactions the dropped tombstones keep length near the
     live count. *)
  Alcotest.(check bool)
    (Printf.sprintf "length %d reasonable" (Store.length s))
    true
    (Store.length s < 400)

let test_store_model_with_deletes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"store with deletes matches Map model"
       QCheck.(list (pair (int_bound 60) bool))
       (fun ops ->
         let config = { Store.memtable_limit = 16; max_runs = 2; seed = 2L } in
         let s = Store.create ~config () in
         let module M = Stdlib.Map.Make (String) in
         let model =
           List.fold_left
             (fun m (k, is_put) ->
               let key = Printf.sprintf "k%03d" k in
               if is_put then begin
                 Store.put s key "v";
                 M.add key "v" m
               end
               else begin
                 Store.delete s key;
                 M.remove key m
               end)
             M.empty ops
         in
         List.for_all
           (fun k ->
             let key = Printf.sprintf "k%03d" k in
             Store.get s key = M.find_opt key model)
           (List.init 61 Fun.id)))

let test_store_trace_records_accesses () =
  let s = Store.create ~config:small_config () in
  for i = 0 to 499 do
    Store.put s (Printf.sprintf "key%04d" i) "v"
  done;
  let trace = Store.trace_of s (fun () -> ignore (Store.get s "key0250")) in
  Alcotest.(check bool) "GET touches memory" true (Array.length trace > 0);
  let scan_trace =
    Store.trace_of s (fun () -> ignore (Store.scan s ~start:"key0000" ~limit:200))
  in
  Alcotest.(check bool) "SCAN touches more than GET" true
    (Array.length scan_trace > Array.length trace)

let suite =
  [
    Alcotest.test_case "skiplist insert/find" `Quick test_skiplist_insert_find;
    Alcotest.test_case "skiplist overwrite" `Quick test_skiplist_overwrite;
    Alcotest.test_case "skiplist sorted" `Quick test_skiplist_sorted_iteration;
    Alcotest.test_case "skiplist iter_from" `Quick test_skiplist_iter_from;
    Alcotest.test_case "skiplist min/max" `Quick test_skiplist_min_max;
    test_skiplist_model;
    Alcotest.test_case "skiplist tracer" `Quick test_skiplist_tracer;
    Alcotest.test_case "sstable find" `Quick test_sstable_find;
    Alcotest.test_case "sstable rejects unsorted" `Quick test_sstable_rejects_unsorted;
    Alcotest.test_case "sstable iter_from" `Quick test_sstable_iter_from;
    Alcotest.test_case "sstable merge newest" `Quick test_sstable_merge_newest_wins;
    Alcotest.test_case "sstable merge many" `Quick test_sstable_merge_many;
    Alcotest.test_case "store get/put" `Quick test_store_get_put;
    Alcotest.test_case "store overwrite" `Quick test_store_overwrite_across_flushes;
    Alcotest.test_case "store scan" `Quick test_store_scan_merges_sources;
    Alcotest.test_case "store scan memtable" `Quick test_store_scan_sees_fresh_memtable;
    Alcotest.test_case "store compaction" `Quick test_store_compaction_caps_runs;
    test_store_model;
    test_bloom_no_false_negatives;
    Alcotest.test_case "bloom fpr bounded" `Quick test_bloom_fpr_bounded;
    Alcotest.test_case "bloom bad args" `Quick test_bloom_rejects_bad_args;
    Alcotest.test_case "store delete basic" `Quick test_store_delete_basic;
    Alcotest.test_case "store delete shadows" `Quick test_store_delete_shadows_runs;
    Alcotest.test_case "store compaction drops tombstones" `Quick
      test_store_compaction_drops_tombstones;
    test_store_model_with_deletes;
    Alcotest.test_case "store trace" `Quick test_store_trace_records_accesses;
  ]

(* --- Streaming iterator --- *)

let test_iterator_streams_all () =
  let s = Store.create ~config:small_config () in
  for i = 0 to 299 do
    Store.put s (Printf.sprintf "key%04d" i) (string_of_int i)
  done;
  let it = Store.iterate s ~start:"" in
  let count = ref 0 and last = ref "" in
  let rec go () =
    match Store.next it with
    | Some (k, _) ->
        Alcotest.(check bool) "ascending" true (k > !last);
        last := k;
        incr count;
        go ()
    | None -> ()
  in
  go ();
  check Alcotest.int "all keys streamed once" 300 !count

let test_iterator_resolves_shadowing_and_tombstones () =
  let s = Store.create ~config:small_config () in
  for i = 0 to 199 do
    Store.put s (Printf.sprintf "key%04d" i) "old"
  done;
  Store.put s "key0001" "new";
  Store.delete s "key0002";
  let it = Store.iterate s ~start:"key0000" in
  (match Store.next it with
  | Some (k, v) ->
      check Alcotest.string "first key" "key0000" k;
      check Alcotest.string "old value" "old" v
  | None -> Alcotest.fail "expected binding");
  (match Store.next it with
  | Some (k, v) ->
      check Alcotest.string "second key" "key0001" k;
      check Alcotest.string "shadowed by memtable" "new" v
  | None -> Alcotest.fail "expected binding");
  match Store.next it with
  | Some (k, _) -> check Alcotest.string "tombstone skipped" "key0003" k
  | None -> Alcotest.fail "expected binding"

let test_iterator_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"iterator equals Map bindings"
       QCheck.(list (pair (int_bound 60) bool))
       (fun ops ->
         let config = { Store.memtable_limit = 16; max_runs = 2; seed = 2L } in
         let s = Store.create ~config () in
         let module M = Stdlib.Map.Make (String) in
         let model =
           List.fold_left
             (fun m (k, is_put) ->
               let key = Printf.sprintf "k%03d" k in
               if is_put then begin
                 Store.put s key "v";
                 M.add key "v" m
               end
               else begin
                 Store.delete s key;
                 M.remove key m
               end)
             M.empty ops
         in
         let it = Store.iterate s ~start:"" in
         let rec drain acc =
           match Store.next it with Some b -> drain (b :: acc) | None -> List.rev acc
         in
         drain [] = M.bindings model))

let iterator_suite =
  [
    Alcotest.test_case "iterator streams all" `Quick test_iterator_streams_all;
    Alcotest.test_case "iterator shadowing" `Quick test_iterator_resolves_shadowing_and_tombstones;
    test_iterator_model;
  ]

let suite = suite @ iterator_suite
