(* Tests for tq_workload: distributions, Table 1 specs, arrivals, metrics. *)

module Service_dist = Tq_workload.Service_dist
module Table1 = Tq_workload.Table1
module Arrivals = Tq_workload.Arrivals
module Metrics = Tq_workload.Metrics
module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Time_unit = Tq_util.Time_unit

let check = Alcotest.check

let test_make_validates_ratios () =
  Alcotest.(check bool) "bad ratios rejected" true
    (try
       ignore
         (Service_dist.make ~name:"bad"
            [ { class_name = "a"; ratio = 0.5; sampler = Fixed 1 } ]);
       false
     with Invalid_argument _ -> true)

let test_mean_service () =
  (* Extreme bimodal (sim): 0.995*0.5us + 0.005*500us = 2.9975us. *)
  let m = Service_dist.mean_service_ns Table1.extreme_bimodal_sim in
  check (Alcotest.float 0.01) "extreme-bimodal-sim mean" 2997.5 m;
  let m = Service_dist.mean_service_ns Table1.high_bimodal in
  check (Alcotest.float 0.01) "high-bimodal mean" 50_500.0 m;
  let m = Service_dist.mean_service_ns Table1.exp1 in
  check (Alcotest.float 0.01) "exp1 mean" 1_000.0 m

let test_tpcc_mean () =
  (* 0.44*5.7 + 0.04*6 + 0.44*20 + 0.04*88 + 0.04*100 us *)
  let expected = ((0.44 *. 5.7) +. (0.04 *. 6.0) +. (0.44 *. 20.0) +. (0.04 *. 88.0) +. (0.04 *. 100.0)) *. 1000.0 in
  check (Alcotest.float 0.5) "tpcc mean" expected
    (Service_dist.mean_service_ns Table1.tpcc)

let test_dispersion_ratio () =
  let r = Service_dist.dispersion_ratio Table1.extreme_bimodal_sim in
  check (Alcotest.float 1e-6) "dispersion 1000" 1000.0 r

let test_sampling_ratios () =
  let rng = Prng.create ~seed:5L in
  let n = 200_000 in
  let long = ref 0 in
  for _ = 1 to n do
    let idx, service = Service_dist.sample Table1.extreme_bimodal_sim rng in
    if idx = 1 then begin
      incr long;
      check Alcotest.int "long service" (Time_unit.us 500.0) service
    end
    else check Alcotest.int "short service" (Time_unit.us 0.5) service
  done;
  let f = float_of_int !long /. float_of_int n in
  Alcotest.(check bool) "long ratio ~0.5%" true (Float.abs (f -. 0.005) < 0.002)

let test_exponential_sampling_mean () =
  let rng = Prng.create ~seed:7L in
  let n = 100_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let _, s = Service_dist.sample Table1.exp1 rng in
    sum := !sum + s
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "sampled mean ~1us" true (Float.abs (mean -. 1000.0) < 20.0)

let test_find_by_name () =
  Alcotest.(check bool) "finds tpcc" true (Table1.find "tpcc" <> None);
  Alcotest.(check bool) "unknown none" true (Table1.find "nope" = None);
  check Alcotest.int "all six workloads" 6 (List.length Table1.all)

let test_lognormal_mean () =
  let s = Service_dist.Lognormal { median_ns = 1000.0; sigma = 0.5 } in
  check (Alcotest.float 1.0) "lognormal mean formula"
    (1000.0 *. exp 0.125)
    (Service_dist.sampler_mean_ns s)

let test_arrivals_rate () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:11L in
  let count = ref 0 in
  let issued =
    Arrivals.install sim ~rng ~workload:Table1.exp1 ~rate_rps:1_000_000.0
      ~duration_ns:(Time_unit.ms 50.0) ~sink:(fun _ -> incr count)
  in
  Sim.run sim;
  check Alcotest.int "sink saw every request" !issued !count;
  (* Expect ~50_000 arrivals; Poisson sd ~224. *)
  Alcotest.(check bool) "close to expected count" true
    (abs (!count - 50_000) < 1_500)

let test_arrivals_monotone_ids () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:13L in
  let last_id = ref 0 and last_t = ref 0 in
  ignore
    (Arrivals.install sim ~rng ~workload:Table1.exp1 ~rate_rps:100_000.0
       ~duration_ns:(Time_unit.ms 10.0) ~sink:(fun r ->
           Alcotest.(check bool) "ids increase" true (r.req_id = !last_id + 1);
           Alcotest.(check bool) "time monotone" true (r.arrival_ns >= !last_t);
           last_id := r.req_id;
           last_t := r.arrival_ns));
  Sim.run sim

let test_capacity () =
  (* exp1: mean 1us -> 16 cores serve 16 Mrps. *)
  check (Alcotest.float 1.0) "capacity" 16_000_000.0
    (Arrivals.capacity_rps ~cores:16 Table1.exp1)

let test_metrics_warmup_discard () =
  let m = Metrics.create ~workload:Table1.exp1 ~warmup_ns:1000 in
  Metrics.record m ~class_idx:0 ~arrival_ns:500 ~finish_ns:600 ~service_ns:100;
  check Alcotest.int "warmup discarded" 0 (Metrics.completed m ~class_idx:0);
  Metrics.record m ~class_idx:0 ~arrival_ns:1500 ~finish_ns:1700 ~service_ns:100;
  check Alcotest.int "recorded" 1 (Metrics.completed m ~class_idx:0);
  check (Alcotest.float 1e-9) "sojourn" 200.0 (Metrics.sojourn_percentile m ~class_idx:0 50.0);
  check (Alcotest.float 1e-9) "slowdown" 2.0 (Metrics.slowdown_percentile m ~class_idx:0 50.0)

let test_metrics_per_class () =
  let m = Metrics.create ~workload:Table1.extreme_bimodal_sim ~warmup_ns:0 in
  Metrics.record m ~class_idx:0 ~arrival_ns:0 ~finish_ns:100 ~service_ns:100;
  Metrics.record m ~class_idx:1 ~arrival_ns:0 ~finish_ns:1000 ~service_ns:100;
  check Alcotest.int "class counts" 1 (Metrics.completed m ~class_idx:0);
  check Alcotest.int "total" 2 (Metrics.total_completed m);
  check (Alcotest.float 1e-9) "overall p100 sojourn" 1000.0
    (Metrics.overall_sojourn_percentile m 100.0);
  check (Alcotest.float 1e-9) "overall p100 slowdown" 10.0
    (Metrics.overall_slowdown_percentile m 100.0);
  check Alcotest.string "class name" "Long" (Metrics.class_name m 1)

let test_metrics_rejects_bad_record () =
  let m = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  Alcotest.check_raises "finish < arrival"
    (Invalid_argument "Metrics.record: finish before arrival") (fun () ->
      Metrics.record m ~class_idx:0 ~arrival_ns:100 ~finish_ns:50 ~service_ns:10)

let suite =
  [
    Alcotest.test_case "make validates ratios" `Quick test_make_validates_ratios;
    Alcotest.test_case "mean service" `Quick test_mean_service;
    Alcotest.test_case "tpcc mean" `Quick test_tpcc_mean;
    Alcotest.test_case "dispersion ratio" `Quick test_dispersion_ratio;
    Alcotest.test_case "sampling ratios" `Quick test_sampling_ratios;
    Alcotest.test_case "exp sampling mean" `Quick test_exponential_sampling_mean;
    Alcotest.test_case "find by name" `Quick test_find_by_name;
    Alcotest.test_case "lognormal mean" `Quick test_lognormal_mean;
    Alcotest.test_case "arrivals rate" `Quick test_arrivals_rate;
    Alcotest.test_case "arrivals monotone" `Quick test_arrivals_monotone_ids;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "metrics warmup" `Quick test_metrics_warmup_discard;
    Alcotest.test_case "metrics per class" `Quick test_metrics_per_class;
    Alcotest.test_case "metrics rejects bad record" `Quick test_metrics_rejects_bad_record;
  ]

(* --- Empirical distribution --- *)

let test_empirical_sampler () =
  let trace = [| 100; 200; 300; 400 |] in
  let w =
    Service_dist.make ~name:"trace"
      [ { class_name = "traced"; ratio = 1.0; sampler = Empirical trace } ]
  in
  check (Alcotest.float 1e-9) "mean of trace" 250.0 (Service_dist.mean_service_ns w);
  let rng = Prng.create ~seed:21L in
  for _ = 1 to 1_000 do
    let _, s = Service_dist.sample w rng in
    Alcotest.(check bool) "sample from trace" true (Array.mem s trace)
  done

let test_empirical_uniform_frequencies () =
  let trace = [| 1; 2 |] in
  let w =
    Service_dist.make ~name:"trace"
      [ { class_name = "t"; ratio = 1.0; sampler = Empirical trace } ]
  in
  let rng = Prng.create ~seed:23L in
  let ones = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let _, s = Service_dist.sample w rng in
    if s = 1 then incr ones
  done;
  let f = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "roughly half" true (Float.abs (f -. 0.5) < 0.02)

let empirical_suite =
  [
    Alcotest.test_case "empirical sampler" `Quick test_empirical_sampler;
    Alcotest.test_case "empirical frequencies" `Quick test_empirical_uniform_frequencies;
  ]

let suite = suite @ empirical_suite
