(* Tests for tq_net: RSS hashing and the finite-ring NIC model. *)

module Rss = Tq_net.Rss
module Nic = Tq_net.Nic
module Sim = Tq_engine.Sim

let check = Alcotest.check

let request req_id =
  { Tq_workload.Arrivals.req_id; class_idx = 0; service_ns = 1_000; arrival_ns = 0 }

(* --- Rss --- *)

let test_rss_in_range () =
  for flow = 0 to 9_999 do
    let q = Rss.queue_of_flow ~flow ~queues:16 in
    Alcotest.(check bool) "in range" true (q >= 0 && q < 16)
  done

let test_rss_deterministic () =
  for flow = 0 to 100 do
    check Alcotest.int "stable" (Rss.queue_of_flow ~flow ~queues:16)
      (Rss.queue_of_flow ~flow ~queues:16)
  done

let test_rss_uniform_with_many_flows () =
  let queues = 16 in
  let counts = Array.make queues 0 in
  let flows = 160_000 in
  for flow = 0 to flows - 1 do
    let q = Rss.queue_of_flow ~flow ~queues in
    counts.(q) <- counts.(q) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int flows in
      Alcotest.(check bool) "near uniform" true (f > 0.055 && f < 0.07))
    counts

let test_rss_few_flows_leave_gaps () =
  (* With 8 flows on 16 queues, at most 8 queues receive traffic (and
     typically fewer due to collisions). *)
  let covered = Rss.spread ~flows:8 ~queues:16 in
  Alcotest.(check bool) (Printf.sprintf "%d covered" covered) true (covered <= 8);
  let covered_many = Rss.spread ~flows:4096 ~queues:16 in
  check Alcotest.int "many flows cover all" 16 covered_many

let test_rss_flow_of_request () =
  check Alcotest.int "round robin" 3 (Rss.flow_of_request ~flows:8 11);
  Alcotest.check_raises "flows>0" (Invalid_argument "Rss.flow_of_request: flows must be positive")
    (fun () -> ignore (Rss.flow_of_request ~flows:0 1))

(* --- Nic --- *)

let test_nic_delivers_with_delay () =
  let sim = Sim.create () in
  let got = ref [] in
  let nic =
    Nic.create sim ~per_packet_ns:30 ~rx_depth:4
      ~occupancy:(fun () -> 0)
      ~deliver:(fun req -> got := (req.Tq_workload.Arrivals.req_id, Sim.now sim) :: !got)
      ()
  in
  Alcotest.(check bool) "admitted" true (Nic.receive nic (request 1));
  Sim.run sim;
  check Alcotest.(list (pair int int)) "delivered after dma" [ (1, 30) ] !got;
  check Alcotest.int "delivered count" 1 (Nic.delivered nic)

let test_nic_drops_when_full () =
  let sim = Sim.create () in
  let occupancy = ref 0 in
  let nic =
    Nic.create sim ~rx_depth:2 ~occupancy:(fun () -> !occupancy) ~deliver:ignore ()
  in
  Alcotest.(check bool) "admitted at 0" true (Nic.receive nic (request 1));
  occupancy := 2;
  Alcotest.(check bool) "dropped at depth" false (Nic.receive nic (request 2));
  occupancy := 1;
  Alcotest.(check bool) "admitted below depth" true (Nic.receive nic (request 3));
  check Alcotest.int "drops" 1 (Nic.dropped nic);
  check (Alcotest.float 1e-9) "drop rate" (1.0 /. 3.0) (Nic.drop_rate nic)

let test_nic_rejects_bad_depth () =
  let sim = Sim.create () in
  Alcotest.check_raises "depth>0" (Invalid_argument "Nic.create: rx_depth must be positive")
    (fun () ->
      ignore (Nic.create sim ~rx_depth:0 ~occupancy:(fun () -> 0) ~deliver:ignore ()))

let suite =
  [
    Alcotest.test_case "rss in range" `Quick test_rss_in_range;
    Alcotest.test_case "rss deterministic" `Quick test_rss_deterministic;
    Alcotest.test_case "rss uniform" `Quick test_rss_uniform_with_many_flows;
    Alcotest.test_case "rss few flows" `Quick test_rss_few_flows_leave_gaps;
    Alcotest.test_case "rss flow of request" `Quick test_rss_flow_of_request;
    Alcotest.test_case "nic delivers" `Quick test_nic_delivers_with_delay;
    Alcotest.test_case "nic drops" `Quick test_nic_drops_when_full;
    Alcotest.test_case "nic bad depth" `Quick test_nic_rejects_bad_depth;
  ]
