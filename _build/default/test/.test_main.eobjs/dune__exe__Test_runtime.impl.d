test/test_runtime.ml: Alcotest Array Atomic Clock Domain Executor Fiber Fun Instrumented List Mpsc_pool Option Parallel Printf Probe_api Spsc_ring Sys Task_worker Tq_runtime
