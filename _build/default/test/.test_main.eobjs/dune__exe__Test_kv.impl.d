test/test_kv.ml: Alcotest Array Bloom Fun Gen List Printf QCheck QCheck_alcotest Skiplist Sstable Stdlib Store String Tq_kv
