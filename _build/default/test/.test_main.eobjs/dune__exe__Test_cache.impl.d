test/test_cache.ml: Alcotest Array Cache Float Gen Hierarchy List Pointer_chase Printf QCheck QCheck_alcotest Reuse_distance Reuse_model Tq_cache Tq_stats
