test/test_extensions.ml: Alcotest Ast Cfg List Lower Printf String Tq_cache Tq_engine Tq_experiments Tq_instrument Tq_ir Tq_sched Tq_util Tq_workload
