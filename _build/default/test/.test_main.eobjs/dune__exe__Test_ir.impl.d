test/test_ir.ml: Alcotest Analysis Array Ast Cfg Fun Instr List Lower Option Tq_ir
