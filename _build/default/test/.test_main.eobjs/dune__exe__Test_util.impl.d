test/test_util.ml: Alcotest Array Float List QCheck QCheck_alcotest String Tq_util
