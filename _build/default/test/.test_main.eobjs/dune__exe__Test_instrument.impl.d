test/test_instrument.ml: Alcotest Array Ast Bench_programs Cfg Ci_pass Evaluate Float Instr List Lower Option Printf QCheck QCheck_alcotest Tq_instrument Tq_ir Tq_pass Vm
