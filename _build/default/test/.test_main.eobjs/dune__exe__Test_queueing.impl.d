test/test_queueing.ml: Alcotest Float Printf Tq_engine Tq_queueing Tq_sched Tq_util Tq_workload
