test/test_facade.ml: Alcotest Tq
