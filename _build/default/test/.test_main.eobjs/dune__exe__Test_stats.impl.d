test/test_stats.ml: Alcotest Float Gen List QCheck QCheck_alcotest Tq_stats Tq_util
