test/test_net.ml: Alcotest Array Printf Tq_engine Tq_net Tq_workload
