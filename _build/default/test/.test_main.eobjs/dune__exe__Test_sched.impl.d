test/test_sched.ml: Alcotest Array Float Fun List Option Printf Tq_engine Tq_sched Tq_util Tq_workload
