test/test_workload.ml: Alcotest Array Float List Tq_engine Tq_util Tq_workload
