test/test_tpcc.ml: Alcotest Array Consistency Float Hashtbl Nurand Option Printf Schema Tq_tpcc Tq_util Transactions
