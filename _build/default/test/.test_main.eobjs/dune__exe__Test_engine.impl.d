test/test_engine.ml: Alcotest List Tq_engine Tq_util
