(* Tests for tq_stats: exact percentiles, histograms, P2 estimator. *)

module Sample_set = Tq_stats.Sample_set
module Histogram = Tq_stats.Histogram
module P2 = Tq_stats.P2_quantile
module Prng = Tq_util.Prng

let check = Alcotest.check
let qtest ?(count = 100) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Sample_set --- *)

let test_percentile_known () =
  let s = Sample_set.create () in
  for i = 1 to 100 do
    Sample_set.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50" 50.0 (Sample_set.percentile s 50.0);
  check (Alcotest.float 1e-9) "p99" 99.0 (Sample_set.percentile s 99.0);
  check (Alcotest.float 1e-9) "p100 = max" 100.0 (Sample_set.percentile s 100.0);
  check (Alcotest.float 1e-9) "p1" 1.0 (Sample_set.percentile s 1.0)

let test_percentile_unsorted_input () =
  let s = Sample_set.create () in
  List.iter (Sample_set.add s) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check (Alcotest.float 1e-9) "median of 5" 3.0 (Sample_set.percentile s 50.0)

let test_empty_stats () =
  let s = Sample_set.create () in
  Alcotest.(check bool) "nan percentile" true (Float.is_nan (Sample_set.percentile s 50.0));
  Alcotest.(check bool) "nan mean" true (Float.is_nan (Sample_set.mean s));
  check Alcotest.int "count" 0 (Sample_set.count s)

let test_percentile_bounds () =
  let s = Sample_set.create () in
  Sample_set.add s 1.0;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Sample_set.percentile: p out of range") (fun () ->
      ignore (Sample_set.percentile s 101.0))

let test_mean_std () =
  let s = Sample_set.create () in
  List.iter (Sample_set.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Sample_set.mean s);
  check (Alcotest.float 1e-6) "sample std" (sqrt (32.0 /. 7.0)) (Sample_set.std_dev s);
  check (Alcotest.float 1e-9) "max" 9.0 (Sample_set.max_value s);
  check (Alcotest.float 1e-9) "min" 2.0 (Sample_set.min_value s)

let test_percentile_monotone =
  qtest "percentiles are monotone in p"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Sample_set.create () in
      List.iter (Sample_set.add s) xs;
      let ps = [ 1.0; 25.0; 50.0; 90.0; 99.0; 100.0 ] in
      let vs = Sample_set.percentiles s ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vs)

(* --- Histogram --- *)

let test_histogram_exact_small () =
  (* Values below sub_buckets are recorded exactly. *)
  let h = Histogram.create ~sub_buckets:32 ~max_value:1000 () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5 ];
  check Alcotest.int "p50 exact" 3 (Histogram.percentile h 50.0);
  check Alcotest.int "p100 exact" 5 (Histogram.percentile h 100.0);
  check Alcotest.int "count" 5 (Histogram.count h)

let test_histogram_relative_error =
  qtest "histogram percentile relative error bounded"
    QCheck.(list_of_size (Gen.int_range 10 200) (int_range 1 1_000_000))
    (fun xs ->
      let h = Histogram.create ~sub_buckets:32 ~max_value:1_000_000 () in
      let s = Sample_set.create () in
      List.iter
        (fun x ->
          Histogram.record h x;
          Sample_set.add s (float_of_int x))
        xs;
      List.for_all
        (fun p ->
          let exact = Sample_set.percentile s p in
          let approx = float_of_int (Histogram.percentile h p) in
          Float.abs (approx -. exact) <= (exact /. 16.0) +. 1.0)
        [ 50.0; 90.0; 99.0 ])

let test_histogram_clamps () =
  let h = Histogram.create ~max_value:100 () in
  Histogram.record h 1_000_000;
  check Alcotest.int "clamped to max" 100 (Histogram.max_recorded h)

let test_histogram_fraction_above () =
  let h = Histogram.create ~sub_buckets:32 ~max_value:1000 () in
  for v = 1 to 10 do
    Histogram.record h v
  done;
  check (Alcotest.float 1e-9) "above 5" 0.5 (Histogram.fraction_above h 5);
  check (Alcotest.float 1e-9) "above 1000" 0.0 (Histogram.fraction_above h 1000)

let test_histogram_iter_buckets () =
  let h = Histogram.create ~sub_buckets:32 ~max_value:1000 () in
  Histogram.record_n h 7 ~count:5;
  let total = ref 0 in
  Histogram.iter_buckets h (fun ~lo ~hi ~count ->
      Alcotest.(check bool) "range covers value" true (lo <= 7 && 7 < hi);
      total := !total + count);
  check Alcotest.int "counts" 5 !total

let test_histogram_mean () =
  let h = Histogram.create ~sub_buckets:32 ~max_value:1000 () in
  List.iter (Histogram.record h) [ 10; 20; 30 ];
  check (Alcotest.float 0.5) "mean" 20.0 (Histogram.mean h)

(* --- P2_quantile --- *)

let test_p2_small_stream_exact () =
  let p2 = P2.create ~q:0.5 in
  List.iter (P2.add p2) [ 3.0; 1.0; 2.0 ];
  check (Alcotest.float 1e-9) "exact median under 5 samples" 2.0 (P2.estimate p2)

let test_p2_vs_exact_uniform () =
  let rng = Prng.create ~seed:123L in
  let p2 = P2.create ~q:0.9 in
  let s = Sample_set.create () in
  for _ = 1 to 50_000 do
    let x = Prng.float rng 100.0 in
    P2.add p2 x;
    Sample_set.add s x
  done;
  let exact = Sample_set.percentile s 90.0 in
  Alcotest.(check bool) "p90 within 2%" true (Float.abs (P2.estimate p2 -. exact) < 2.0)

let test_p2_vs_exact_exponential () =
  let rng = Prng.create ~seed:77L in
  let p2 = P2.create ~q:0.99 in
  let s = Sample_set.create () in
  for _ = 1 to 100_000 do
    let x = Prng.exponential rng ~mean:10.0 in
    P2.add p2 x;
    Sample_set.add s x
  done;
  let exact = Sample_set.percentile s 99.0 in
  let got = P2.estimate p2 in
  Alcotest.(check bool) "p99 within 10% relative" true
    (Float.abs (got -. exact) /. exact < 0.1)

let test_p2_invalid_q () =
  Alcotest.check_raises "q=0" (Invalid_argument "P2_quantile.create: q must be in (0, 1)")
    (fun () -> ignore (P2.create ~q:0.0))

let suite =
  [
    Alcotest.test_case "percentile known" `Quick test_percentile_known;
    Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "empty stats" `Quick test_empty_stats;
    Alcotest.test_case "percentile bounds" `Quick test_percentile_bounds;
    Alcotest.test_case "mean/std" `Quick test_mean_std;
    test_percentile_monotone;
    Alcotest.test_case "histogram exact small" `Quick test_histogram_exact_small;
    test_histogram_relative_error;
    Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
    Alcotest.test_case "histogram fraction_above" `Quick test_histogram_fraction_above;
    Alcotest.test_case "histogram iter buckets" `Quick test_histogram_iter_buckets;
    Alcotest.test_case "histogram mean" `Quick test_histogram_mean;
    Alcotest.test_case "p2 small exact" `Quick test_p2_small_stream_exact;
    Alcotest.test_case "p2 uniform p90" `Quick test_p2_vs_exact_uniform;
    Alcotest.test_case "p2 exponential p99" `Quick test_p2_vs_exact_exponential;
    Alcotest.test_case "p2 invalid q" `Quick test_p2_invalid_q;
  ]

(* --- Welford --- *)

module Welford = Tq_stats.Welford

let test_welford_basic () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.int "count" 8 (Welford.count w);
  check (Alcotest.float 1e-9) "mean" 5.0 (Welford.mean w);
  check (Alcotest.float 1e-9) "variance" (32.0 /. 7.0) (Welford.variance w);
  check (Alcotest.float 1e-9) "min" 2.0 (Welford.min_value w);
  check (Alcotest.float 1e-9) "max" 9.0 (Welford.max_value w)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check bool) "nan mean" true (Float.is_nan (Welford.mean w));
  Welford.add w 1.0;
  Alcotest.(check bool) "nan variance below 2" true (Float.is_nan (Welford.variance w))

let test_welford_matches_sample_set =
  qtest ~count:100 "welford matches exact moments"
    QCheck.(list_of_size (Gen.int_range 2 100) (float_bound_exclusive 1000.0))
    (fun xs ->
      let w = Welford.create () in
      let s = Sample_set.create () in
      List.iter
        (fun x ->
          Welford.add w x;
          Sample_set.add s x)
        xs;
      Float.abs (Welford.mean w -. Sample_set.mean s) < 1e-6
      && Float.abs (Welford.std_dev w -. Sample_set.std_dev s) < 1e-6)

let test_welford_merge =
  qtest ~count:100 "welford merge equals single stream"
    QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
    (fun (xs, ys) ->
      let a = Welford.create () and b = Welford.create () and whole = Welford.create () in
      List.iter
        (fun x ->
          Welford.add a x;
          Welford.add whole x)
        xs;
      List.iter
        (fun y ->
          Welford.add b y;
          Welford.add whole y)
        ys;
      let merged = Welford.merge a b in
      Welford.count merged = Welford.count whole
      && (Welford.count merged = 0
         || Float.abs (Welford.mean merged -. Welford.mean whole) < 1e-6)
      && (Welford.count merged < 2
         || Float.abs (Welford.variance merged -. Welford.variance whole) < 1e-6))

let welford_suite =
  [
    Alcotest.test_case "welford basic" `Quick test_welford_basic;
    Alcotest.test_case "welford empty" `Quick test_welford_empty;
    test_welford_matches_sample_set;
    test_welford_merge;
  ]

let suite = suite @ welford_suite
