(* Tests for tq_queueing — and simulator-vs-theory validation: the DES
   scheduling models must agree with the closed-form results. *)

module Q = Tq_queueing.Queueing
module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Time_unit = Tq_util.Time_unit
module Service_dist = Tq_workload.Service_dist
module Arrivals = Tq_workload.Arrivals
module Metrics = Tq_workload.Metrics
module Experiment = Tq_sched.Experiment
module Centralized = Tq_sched.Centralized

let check = Alcotest.check

(* --- formulas --- *)

let test_utilization () =
  check (Alcotest.float 1e-9) "rho" 0.5 (Q.utilization ~lambda:8.0 ~mu:2.0 ~servers:8)

let test_mm1_formulas () =
  (* lambda=0.8, mu=1: rho=0.8, L=4, T=5. *)
  check (Alcotest.float 1e-9) "mean jobs" 4.0 (Q.mm1_mean_jobs ~lambda:0.8 ~mu:1.0);
  check (Alcotest.float 1e-9) "mean sojourn" 5.0 (Q.mm1_mean_sojourn ~lambda:0.8 ~mu:1.0);
  check (Alcotest.float 1e-6) "median" (5.0 *. log 2.0)
    (Q.mm1_sojourn_quantile ~lambda:0.8 ~mu:1.0 ~p:0.5)

let test_mm1_rejects_overload () =
  Alcotest.(check bool) "rho >= 1 rejected" true
    (try
       ignore (Q.mm1_mean_jobs ~lambda:2.0 ~mu:1.0);
       false
     with Invalid_argument _ -> true)

let test_erlang_c_reduces_to_mm1 () =
  (* With one server, Erlang C = rho. *)
  check (Alcotest.float 1e-9) "C(1, rho) = rho" 0.7 (Q.erlang_c ~lambda:0.7 ~mu:1.0 ~servers:1)

let test_erlang_c_known_value () =
  (* Classic table value: a = 8 Erlang offered on 10 servers ->
     C ~ 0.409. *)
  let c = Q.erlang_c ~lambda:8.0 ~mu:1.0 ~servers:10 in
  Alcotest.(check bool) (Printf.sprintf "C=%.4f" c) true (Float.abs (c -. 0.409) < 0.005)

let test_mmk_wait_below_mm1 () =
  (* Pooling helps: M/M/4 at the same rho waits less than M/M/1. *)
  let mm1 = Q.mmk_mean_wait ~lambda:0.8 ~mu:1.0 ~servers:1 in
  let mm4 = Q.mmk_mean_wait ~lambda:3.2 ~mu:1.0 ~servers:4 in
  Alcotest.(check bool) "pooled wait smaller" true (mm4 < mm1)

let test_mg1_exponential_matches_mm1 () =
  (* Exponential service: E[S^2] = 2/mu^2 -> P-K equals M/M/1. *)
  let mu = 1.0 and lambda = 0.6 in
  let pk = Q.mg1_mean_sojourn ~lambda ~mean_service:(1.0 /. mu) ~second_moment:2.0 in
  check (Alcotest.float 1e-9) "P-K = M/M/1" (Q.mm1_mean_sojourn ~lambda ~mu) pk

let test_mg1_deterministic_halves_wait () =
  (* Deterministic service: E[S^2] = E[S]^2 -> half the M/M/1 wait. *)
  let md1 = Q.mg1_mean_wait ~lambda:0.8 ~mean_service:1.0 ~second_moment:1.0 in
  let mm1 = Q.mg1_mean_wait ~lambda:0.8 ~mean_service:1.0 ~second_moment:2.0 in
  check (Alcotest.float 1e-9) "M/D/1 = M/M/1 / 2" (mm1 /. 2.0) md1

let test_ps_slowdown () =
  check (Alcotest.float 1e-9) "1/(1-rho)" 4.0 (Q.ps_expected_slowdown ~rho:0.75);
  check (Alcotest.float 1e-9) "sojourn linear in x" 8.0
    (Q.mm1_ps_mean_sojourn_for ~lambda:0.75 ~mu:1.0 ~x:2.0)

(* --- simulator vs theory --- *)

(* An M/M/k FCFS system: ideal centralized scheduler, run-to-completion. *)
let simulate_mmk ~servers ~rho ~mean_service_ns =
  let workload =
    Service_dist.make ~name:"mm"
      [
        {
          class_name = "exp";
          ratio = 1.0;
          sampler = Service_dist.Exponential (float_of_int mean_service_ns);
        };
      ]
  in
  let mu = 1e9 /. float_of_int mean_service_ns in
  let lambda = rho *. mu *. float_of_int servers in
  let config =
    { (Centralized.ideal_config ~quantum_ns:0 ~cores:servers) with quantum_ns = None }
  in
  let r =
    Experiment.run ~seed:97L ~system:(Experiment.Centralized config) ~workload
      ~rate_rps:lambda ~duration_ns:(Time_unit.ms 400.0) ()
  in
  (lambda, mu, Metrics.mean_sojourn r.metrics ~class_idx:0)

let test_sim_matches_mm1 () =
  let lambda, mu, measured = simulate_mmk ~servers:1 ~rho:0.7 ~mean_service_ns:1_000 in
  let predicted = Q.mm1_mean_sojourn ~lambda:(lambda /. 1e9) ~mu:(mu /. 1e9) in
  Alcotest.(check bool)
    (Printf.sprintf "M/M/1 sojourn: sim %.0fns vs theory %.0fns" measured predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.08)

let test_sim_matches_mmk () =
  let servers = 8 in
  let lambda, mu, measured = simulate_mmk ~servers ~rho:0.8 ~mean_service_ns:1_000 in
  let predicted =
    Q.mmk_mean_sojourn ~lambda:(lambda /. 1e9) ~mu:(mu /. 1e9) ~servers
  in
  Alcotest.(check bool)
    (Printf.sprintf "M/M/8 sojourn: sim %.0fns vs theory %.0fns" measured predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.08)

let test_sim_matches_mg1_bimodal () =
  (* Deterministic bimodal service on one FCFS server vs P-K. *)
  let short = 1_000 and long = 10_000 in
  let workload =
    Service_dist.make ~name:"bimodal"
      [
        { class_name = "s"; ratio = 0.9; sampler = Service_dist.Fixed short };
        { class_name = "l"; ratio = 0.1; sampler = Service_dist.Fixed long };
      ]
  in
  let mean_service = (0.9 *. float_of_int short) +. (0.1 *. float_of_int long) in
  let second_moment =
    (0.9 *. float_of_int short *. float_of_int short)
    +. (0.1 *. float_of_int long *. float_of_int long)
  in
  let rho = 0.7 in
  let lambda_ns = rho /. mean_service in
  let config =
    { (Centralized.ideal_config ~quantum_ns:0 ~cores:1) with quantum_ns = None }
  in
  let r =
    Experiment.run ~seed:91L ~system:(Experiment.Centralized config) ~workload
      ~rate_rps:(lambda_ns *. 1e9) ~duration_ns:(Time_unit.ms 400.0) ()
  in
  let measured = Metrics.overall_sojourn_percentile r.metrics 50.0 in
  ignore measured;
  let measured_mean =
    (0.9 *. Metrics.mean_sojourn r.metrics ~class_idx:0)
    +. (0.1 *. Metrics.mean_sojourn r.metrics ~class_idx:1)
  in
  let predicted = Q.mg1_mean_sojourn ~lambda:lambda_ns ~mean_service ~second_moment in
  Alcotest.(check bool)
    (Printf.sprintf "M/G/1 sojourn: sim %.0fns vs P-K %.0fns" measured_mean predicted)
    true
    (Float.abs (measured_mean -. predicted) /. predicted < 0.08)

let test_sim_ps_slowdown_uniform () =
  (* PS on one core: expected slowdown 1/(1-rho) for both classes. *)
  let workload =
    Service_dist.make ~name:"bimodal"
      [
        { class_name = "s"; ratio = 0.9; sampler = Service_dist.Fixed 1_000 };
        { class_name = "l"; ratio = 0.1; sampler = Service_dist.Fixed 10_000 };
      ]
  in
  let rho = 0.6 in
  let mean_service = 1_900.0 in
  let config = Centralized.ideal_config ~quantum_ns:100 ~cores:1 in
  let r =
    Experiment.run ~seed:93L ~system:(Experiment.Centralized config) ~workload
      ~rate_rps:(rho /. mean_service *. 1e9) ~duration_ns:(Time_unit.ms 300.0) ()
  in
  let predicted = Q.ps_expected_slowdown ~rho in
  let mean_slowdown cls =
    Metrics.mean_sojourn r.metrics ~class_idx:cls
    /. float_of_int (if cls = 0 then 1_000 else 10_000)
  in
  (* The PS slowdown property: both classes see ~1/(1-rho), the long
     class slightly less with finite quanta. *)
  Alcotest.(check bool)
    (Printf.sprintf "short slowdown %.2f ~ %.2f" (mean_slowdown 0) predicted)
    true
    (Float.abs (mean_slowdown 0 -. predicted) /. predicted < 0.15);
  Alcotest.(check bool)
    (Printf.sprintf "long slowdown %.2f ~ %.2f" (mean_slowdown 1) predicted)
    true
    (Float.abs (mean_slowdown 1 -. predicted) /. predicted < 0.15)

let suite =
  [
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "mm1 formulas" `Quick test_mm1_formulas;
    Alcotest.test_case "mm1 overload rejected" `Quick test_mm1_rejects_overload;
    Alcotest.test_case "erlang c reduces to mm1" `Quick test_erlang_c_reduces_to_mm1;
    Alcotest.test_case "erlang c known value" `Quick test_erlang_c_known_value;
    Alcotest.test_case "mmk pooling" `Quick test_mmk_wait_below_mm1;
    Alcotest.test_case "mg1 exponential = mm1" `Quick test_mg1_exponential_matches_mm1;
    Alcotest.test_case "md1 halves wait" `Quick test_mg1_deterministic_halves_wait;
    Alcotest.test_case "ps slowdown" `Quick test_ps_slowdown;
    Alcotest.test_case "sim vs M/M/1" `Slow test_sim_matches_mm1;
    Alcotest.test_case "sim vs M/M/8" `Slow test_sim_matches_mmk;
    Alcotest.test_case "sim vs M/G/1 (P-K)" `Slow test_sim_matches_mg1_bimodal;
    Alcotest.test_case "sim PS slowdown uniform" `Slow test_sim_ps_slowdown_uniform;
  ]
