(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sections 2 and 5), then micro-benchmarks this
   library's own primitives with Bechamel.

     dune exec bench/main.exe -- [--jobs N] [--no-cache] [--parallel-bench [FILE]]
                                 [--obs-bench [FILE]] [--profile-bench [FILE]]
                                 [--serve-bench [FILE]] [--steal-bench [FILE]]
                                 [--tail-bench [FILE]]

   The sweep grid fans out over OCaml 5 domains (--jobs or TQ_JOBS,
   default: recommended domain count) and completed points are served
   from _tq_cache/ unless --no-cache.  --parallel-bench times the
   standard sweep at jobs=1 vs jobs=max and writes BENCH_parallel.json
   instead of running the full harness; --obs-bench measures the span
   record path on vs off and writes BENCH_obs_serve.json;
   --profile-bench measures the latency-attribution machinery
   (decomposition throughput, disabled-hook costs) and writes
   BENCH_profile.json; --serve-bench runs the in-process multi-lane
   serve sweep (a real Server + Load_gen per lane count) and writes
   BENCH_serve.json.

   Simulated durations scale with TQ_BENCH_SCALE (default 1.0).
   EXPERIMENTS.md records paper-vs-measured for each experiment. *)

let hr () = print_endline (String.make 78 '=')

let run_experiments ~jobs ~use_cache () =
  hr ();
  Printf.printf
    "Tiny Quanta reproduction — every paper table/figure (TQ_BENCH_SCALE=%.2f, jobs=%d)\n"
    Tq_experiments.Harness.scale jobs;
  hr ();
  print_newline ();
  let cache =
    if use_cache then Tq_par.Result_cache.create () else Tq_par.Result_cache.disabled ()
  in
  let stats = Tq_par.Sweep.run_and_print ~jobs ~cache Tq_experiments.Registry.all in
  Printf.printf "[%s]\n\n%!" (Tq_par.Sweep.summary stats)

(* ------------------------------------------------------------------ *)
(* Parallel sweep benchmark: jobs=1 vs jobs=max over the full grid     *)
(* ------------------------------------------------------------------ *)

let run_parallel_bench ~out () =
  let experiments = Tq_experiments.Registry.all in
  let time_run ~jobs =
    (* Cache disabled: both runs must recompute every point.  Compact
       first so the second run does not pay for the first one's heap. *)
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let _, stats =
      Tq_par.Sweep.run ~jobs ~cache:(Tq_par.Result_cache.disabled ()) experiments
    in
    (Unix.gettimeofday () -. t0, stats)
  in
  let jobs_max = Tq_par.Domain_pool.default_jobs () in
  Printf.eprintf "parallel bench: %d grid points, jobs=1 then jobs=%d (TQ_BENCH_SCALE=%g)\n%!"
    Tq_experiments.Registry.point_count jobs_max Tq_experiments.Harness.scale;
  let wall1, stats1 = time_run ~jobs:1 in
  Printf.eprintf "jobs=1: %.1fs\n%!" wall1;
  (* On a single-core host jobs=max *is* jobs=1; a second timed run of
     the identical configuration would only sample noise, so reuse the
     measurement and report the trivial 1.0x. *)
  let wallN, statsN =
    if jobs_max <= 1 then (wall1, stats1)
    else begin
      let wallN, statsN = time_run ~jobs:jobs_max in
      Printf.eprintf "jobs=%d: %.1fs\n%!" jobs_max wallN;
      (wallN, statsN)
    end
  in
  let speedup = if wallN > 0.0 then wall1 /. wallN else 0.0 in
  let util =
    Array.to_list statsN.pool.per_domain_busy_ns
    |> List.map (fun busy ->
           Printf.sprintf "%.3f"
             (if statsN.pool.wall_ns = 0 then 0.0
              else float_of_int busy /. float_of_int statsN.pool.wall_ns))
    |> String.concat ", "
  in
  let oc = open_out out in
  output_string oc ("{\n" ^ Tq_util.Bench_meta.json_fields ());
  Printf.fprintf oc
    "\  \"benchmark\": \"parallel standard sweep (every registry point)\",\n\
    \  \"tq_bench_scale\": %g,\n\
    \  \"host_cores\": %d,\n\
    \  \"grid_points\": %d,\n\
    \  \"jobs_1_wall_s\": %.2f,\n\
    \  \"jobs_max\": %d,\n\
    \  \"jobs_max_wall_s\": %.2f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"steals\": %d,\n\
    \  \"per_domain_utilization\": [%s]\n\
     }\n"
    Tq_experiments.Harness.scale
    (Domain.recommended_domain_count ())
    Tq_experiments.Registry.point_count wall1 jobs_max wallN speedup
    statsN.pool.steals util;
  close_out oc;
  Printf.printf "wrote %s (speedup %.2fx at jobs=%d)\n" out speedup jobs_max

(* ------------------------------------------------------------------ *)
(* Multi-lane serve sweep: the BENCH_serve.json emitter                 *)
(* ------------------------------------------------------------------ *)

(* One in-process loopback run per dispatcher lane count: a real
   tq_serve Server (lane 0 on a helper thread, extra lanes on their own
   domains) under the open-loop Load_gen at a fixed offered rate.  The
   committed BENCH_serve.json is this sweep; CI regenerates it and
   additionally gates p99(lanes=1)/p99(lanes=2) > 1 on multi-core
   runners (on a single core the lanes only add coordination, so the
   speedup is recorded but not gated). *)

(* 150k offered rps is the calibrated load: enough to saturate one
   dispatcher lane (the old single-dispatcher baseline peaked near
   120k), so the lanes=2 row shows what sharding the I/O plane buys. *)
let serve_bench_rate = 150_000.0
let serve_bench_workers = 2
let serve_bench_lane_counts = [ 1; 2 ]

let run_serve_one ~lanes =
  let config =
    {
      Tq_serve.Server.default_config with
      port = 0;
      workers = serve_bench_workers;
      lanes;
      rx_depth = 2048;
      kv_keys = 1024;
    }
  in
  let srv = Tq_serve.Server.create config in
  let th = Thread.create (fun () -> Tq_serve.Server.serve srv) () in
  let lcfg =
    {
      (Tq_serve.Load_gen.default_config ~rate_rps:serve_bench_rate
         ~port:(Tq_serve.Server.port srv))
      with
      server_lanes = lanes;
    }
  in
  let r = Tq_serve.Load_gen.run lcfg in
  Tq_serve.Server.stop srv;
  Thread.join th;
  let stats = Tq_serve.Server.stats srv in
  (* The accounting identity must hold on every lane count, or the
     numbers below measured a broken plane. *)
  if stats.parsed <> stats.dispatched + stats.shed then
    failwith
      (Printf.sprintf "serve bench: lanes=%d parsed %d <> dispatched %d + shed %d"
         lanes stats.parsed stats.dispatched stats.shed);
  (lcfg, r, stats)

let run_serve_bench ~out () =
  hr ();
  Printf.printf "Multi-lane serve sweep (lanes in {%s}, %d workers, %.0f offered rps)\n"
    (String.concat ", " (List.map string_of_int serve_bench_lane_counts))
    serve_bench_workers serve_bench_rate;
  hr ();
  let results =
    List.map
      (fun lanes ->
        let _, r, stats = run_serve_one ~lanes in
        let all = Tq_obs.Latency.recorder r.latency "all" in
        let p q = float_of_int (Tq_obs.Latency.percentile all q) /. 1e3 in
        let p50 = p 0.50 and p99 = p 0.99 and p999 = p 0.999 in
        Printf.printf
          "lanes=%d: %.0f rps, p50 %.0f us, p99 %.0f us, p99.9 %.0f us (%d ok, %d \
           shed, %d errors)\n\
           %!"
          lanes r.throughput_rps p50 p99 p999 r.ok r.shed r.errors;
        (lanes, r, stats, (p50, p99, p999)))
      serve_bench_lane_counts
  in
  let p99_of n =
    List.find_map
      (fun (lanes, _, _, (_, p99, _)) -> if lanes = n then Some p99 else None)
      results
  in
  let speedup =
    match (p99_of 1, p99_of 2) with
    | Some base, Some multi when multi > 0.0 -> base /. multi
    | _ -> 1.0
  in
  let oc = open_out out in
  output_string oc ("{\n" ^ Tq_util.Bench_meta.json_fields ());
  Printf.fprintf oc
    "\  \"benchmark\": \"multi-lane serve sweep (tq_serve loopback)\",\n\
    \  \"host_cores\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"connections\": 8,\n\
    \  \"offered_rps\": %.0f,\n\
    \  \"warmup_s\": 0.5,\n\
    \  \"measure_s\": 2,\n\
    \  \"sweep\": [\n"
    (Domain.recommended_domain_count ())
    serve_bench_workers serve_bench_rate;
  List.iteri
    (fun i (lanes, (r : Tq_serve.Load_gen.result), (s : Tq_serve.Server.stats),
            (p50, p99, p999)) ->
      Printf.fprintf oc
        "    {\"lanes\": %d, \"throughput_rps\": %.0f, \"ok\": %d, \"shed\": %d, \
         \"errors\": %d, \"outstanding\": %d,\n\
        \     \"parsed\": %d, \"dispatched\": %d, \"completed\": %d,\n\
        \     \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n"
        lanes r.throughput_rps r.ok r.shed r.errors r.outstanding s.parsed s.dispatched
        s.completed p50 p99 p999
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n  \"p99_speedup_lanes2\": %.3f\n}\n" speedup;
  close_out oc;
  Printf.printf "wrote %s (p99 speedup lanes=1 -> lanes=2: %.3fx)\n%!" out speedup

(* ------------------------------------------------------------------ *)
(* Skewed-load steal A/B: the BENCH_steal.json emitter                  *)
(* ------------------------------------------------------------------ *)

(* Same server, same skewed offered load, steal off vs on.  The mix is
   heavy-tailed unkeyed echo (a few percent of requests spin ~200x the
   common case), the shape that strands a backlog of short requests
   behind whichever worker drew a heavy one — exactly what the idle
   sibling's steal-half second chance redistributes.  Emits both p99s,
   the steal counters, and the off/on p99 ratio. *)
let steal_bench_rate = 40_000.0
let steal_bench_workers = 2

let run_steal_one ~steal =
  let config =
    {
      Tq_serve.Server.default_config with
      port = 0;
      workers = steal_bench_workers;
      lanes = 1;
      rx_depth = 2048;
      kv_keys = 1024;
      steal;
    }
  in
  let srv = Tq_serve.Server.create config in
  let th = Thread.create (fun () -> Tq_serve.Server.serve srv) () in
  let lcfg =
    {
      (Tq_serve.Load_gen.default_config ~rate_rps:steal_bench_rate
         ~port:(Tq_serve.Server.port srv))
      with
      mix =
        {
          Tq_serve.Load_gen.default_mix with
          echo = 0.92;
          kv = 0.03;
          tpcc = 0.0;
          echo_heavy = 0.05;
          echo_spin_ns = 1_000;
          echo_heavy_spin_ns = 200_000;
        };
    }
  in
  let r = Tq_serve.Load_gen.run lcfg in
  Tq_serve.Server.stop srv;
  Thread.join th;
  let stats = Tq_serve.Server.stats srv in
  if stats.parsed <> stats.dispatched + stats.shed then
    failwith
      (Printf.sprintf "steal bench: steal=%b parsed %d <> dispatched %d + shed %d"
         steal stats.parsed stats.dispatched stats.shed);
  let reg = Tq_serve.Server.merged_counters srv in
  let steals = Tq_obs.Counters.find_count reg "runtime.steals" in
  let steal_items = Tq_obs.Counters.find_count reg "runtime.steal_items" in
  (r, stats, steals, steal_items)

let run_steal_bench ~out () =
  hr ();
  Printf.printf
    "Steal A/B under a skewed offered load (%d workers, %.0f rps, 5%% heavy echoes)\n"
    steal_bench_workers steal_bench_rate;
  hr ();
  let results =
    List.map
      (fun steal ->
        let r, stats, steals, steal_items = run_steal_one ~steal in
        let all = Tq_obs.Latency.recorder r.latency "all" in
        let p q = float_of_int (Tq_obs.Latency.percentile all q) /. 1e3 in
        let p50 = p 0.50 and p99 = p 0.99 and p999 = p 0.999 in
        Printf.printf
          "steal=%-3s: %.0f rps, p50 %.0f us, p99 %.0f us, p99.9 %.0f us, %d steal \
           batches / %d moved (%d ok, %d shed)\n\
           %!"
          (if steal then "on" else "off")
          r.throughput_rps p50 p99 p999 steals steal_items r.ok r.shed;
        (steal, r, stats, steals, steal_items, (p50, p99, p999)))
      [ false; true ]
  in
  let p99_of v =
    List.find_map
      (fun (steal, _, _, _, _, (_, p99, _)) -> if steal = v then Some p99 else None)
      results
  in
  let improvement =
    match (p99_of false, p99_of true) with
    | Some off, Some on when on > 0.0 -> off /. on
    | _ -> 1.0
  in
  let oc = open_out out in
  output_string oc ("{\n" ^ Tq_util.Bench_meta.json_fields ());
  Printf.fprintf oc
    "\  \"benchmark\": \"steal A/B under skewed load (tq_serve loopback)\",\n\
    \  \"host_cores\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"offered_rps\": %.0f,\n\
    \  \"mix\": {\"echo\": 0.92, \"kv\": 0.03, \"echo_heavy\": 0.05, \
     \"echo_spin_ns\": 1000, \"echo_heavy_spin_ns\": 200000},\n\
    \  \"sweep\": [\n"
    (Domain.recommended_domain_count ())
    steal_bench_workers steal_bench_rate;
  List.iteri
    (fun i (steal, (r : Tq_serve.Load_gen.result), (s : Tq_serve.Server.stats), steals,
            steal_items, (p50, p99, p999)) ->
      Printf.fprintf oc
        "    {\"steal\": %b, \"throughput_rps\": %.0f, \"ok\": %d, \"shed\": %d, \
         \"errors\": %d,\n\
        \     \"parsed\": %d, \"dispatched\": %d, \"completed\": %d, \"steals\": %d, \
         \"steal_items\": %d,\n\
        \     \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n"
        steal r.throughput_rps r.ok r.shed r.errors s.parsed s.dispatched s.completed
        steals steal_items p50 p99 p999
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n  \"p99_improvement_steal\": %.3f\n}\n" improvement;
  close_out oc;
  Printf.printf "wrote %s (p99 steal off -> on: %.3fx)\n%!" out improvement

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the library's own primitives           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let test_heap =
  let heap = Tq_util.Binary_heap.create ~capacity:1024 ~dummy:0 () in
  let key = ref 0 in
  Test.make ~name:"binary_heap push+pop"
    (Staged.stage (fun () ->
         incr key;
         Tq_util.Binary_heap.push heap ~key:(!key land 1023) 1;
         ignore (Tq_util.Binary_heap.pop heap)))

let test_prng =
  let rng = Tq_util.Prng.create ~seed:1L in
  Test.make ~name:"prng bits64" (Staged.stage (fun () -> ignore (Tq_util.Prng.bits64 rng)))

let test_sim_event =
  Test.make ~name:"sim schedule+run event"
    (Staged.stage
       (let sim = Tq_engine.Sim.create () in
        fun () ->
          ignore (Tq_engine.Sim.schedule_after sim ~delay:1 ignore);
          ignore (Tq_engine.Sim.step sim)))

let test_fiber =
  Test.make ~name:"fiber create+yield+finish"
    (Staged.stage (fun () ->
         let f = Tq_runtime.Fiber.create (fun () -> Tq_runtime.Fiber.yield ()) in
         ignore (Tq_runtime.Fiber.resume f);
         ignore (Tq_runtime.Fiber.resume f)))

let test_probe =
  (* Probe check without yielding: the steady-state cost of a compiled
     probe site (paper: RDTSC + compare). *)
  let ctx =
    Tq_runtime.Probe_api.create ~clock:(Tq_runtime.Clock.virtual_ ()) ~quantum_ns:max_int
  in
  Tq_runtime.Probe_api.install ctx;
  Test.make ~name:"probe check (not expired)"
    (Staged.stage (fun () -> Tq_runtime.Probe_api.probe ()))

let test_spsc =
  let ring = Tq_runtime.Spsc_ring.create ~capacity:64 in
  Test.make ~name:"spsc_ring push+pop"
    (Staged.stage (fun () ->
         ignore (Tq_runtime.Spsc_ring.try_push ring 1);
         ignore (Tq_runtime.Spsc_ring.try_pop ring)))

let test_skiplist =
  let sl = Tq_kv.Skiplist.create () in
  let () =
    for i = 0 to 9_999 do
      Tq_kv.Skiplist.insert sl (Printf.sprintf "key%08d" i) i
    done
  in
  let i = ref 0 in
  Test.make ~name:"skiplist find (10k keys)"
    (Staged.stage (fun () ->
         i := (!i + 7_919) mod 10_000;
         ignore (Tq_kv.Skiplist.find sl (Printf.sprintf "key%08d" !i))))

let test_cache =
  let cache = Tq_cache.Cache.create ~size_bytes:32_768 ~ways:8 () in
  let addr = ref 0 in
  Test.make ~name:"cache access (L1 geometry)"
    (Staged.stage (fun () ->
         addr := (!addr + 4_096) land 0xFFFFF;
         ignore (Tq_cache.Cache.access cache !addr)))

let test_deque =
  let dq = Tq_util.Ring_deque.create () in
  Test.make ~name:"ring_deque push_back+pop_front"
    (Staged.stage (fun () ->
         Tq_util.Ring_deque.push_back dq 1;
         ignore (Tq_util.Ring_deque.pop_front dq)))

let test_backoff =
  let config = Tq_workload.Retry.default_config in
  let retry = ref 0 in
  Test.make ~name:"retry backoff schedule"
    (Staged.stage (fun () ->
         retry := (!retry mod 63) + 1;
         ignore (Tq_workload.Retry.backoff_ns config ~retry:!retry)))

let test_serve_codec =
  (* One full wire round trip of the serving layer — encode, stream
     reassembly, decode — i.e. the per-request protocol tax tq_serve's
     dispatcher pays on top of scheduling. *)
  let b = Buffer.create 64 in
  let rb = Tq_serve.Protocol.Reassembly.create () in
  let req = Tq_serve.Protocol.Echo { spin_ns = 1_000; payload = "0123456789abcdef" } in
  Test.make ~name:"serve codec encode+reassemble+decode"
    (Staged.stage (fun () ->
         Buffer.clear b;
         Tq_serve.Protocol.encode_request b ~req_id:7 req;
         let frame = Buffer.to_bytes b in
         Tq_serve.Protocol.Reassembly.add rb frame (Bytes.length frame);
         match Tq_serve.Protocol.Reassembly.next rb with
         | Ok (Some payload) -> ignore (Tq_serve.Protocol.decode_request payload)
         | _ -> assert false))

let test_admission =
  (* The per-arrival cost of the overload gate on the dispatcher's hot
     path (the Queue_limit branch is the cheapest non-trivial one). *)
  let a = Tq_sched.Admission.create (Tq_sched.Admission.Queue_limit { max_in_system = 64 }) in
  let n = ref 0 in
  Test.make ~name:"admission admit (queue limit)"
    (Staged.stage (fun () ->
         incr n;
         ignore (Tq_sched.Admission.admit a ~in_system:(!n land 127))))

(* Trace-overhead microbenchmarks: the record path behind the
   [Trace.enabled] guard, with tracing on and off.  The disabled side is
   the one every hot path pays by default, so it must show ~0 allocated
   words per run (the event constructor sits inside the guard and is
   never evaluated). *)
let make_trace_test ~name tr =
  let lane = Tq_obs.Event.Worker 3 in
  let ts = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr ts;
         if Tq_obs.Trace.enabled tr then
           Tq_obs.Trace.record tr ~ts_ns:!ts ~lane
             (Tq_obs.Event.Quantum_end { job_id = 1; ran_ns = 2_000; finished = false })))

let test_trace_enabled =
  make_trace_test ~name:"obs trace record (enabled)" (Tq_obs.Trace.create ~capacity:4096 ())

let test_trace_disabled =
  make_trace_test ~name:"obs trace record (disabled)" Tq_obs.Trace.null

(* ns/run and minor-words/run OLS estimates for one test. *)
let measure_ns_words test =
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~stabilize:false ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Benchmark.all cfg instances test in
  let estimate instance =
    let analyzed = Analyze.all ols instance results in
    Hashtbl.fold
      (fun _ ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ v ] -> Some v
        | _ -> acc)
      analyzed None
  in
  (estimate Instance.monotonic_clock, estimate Instance.minor_allocated)

let pp_estimate = function Some v -> Printf.sprintf "%10.2f" v | None -> "       n/a"

let print_ns_words test =
  let ns, words = measure_ns_words test in
  let name = Test.Elt.name (List.hd (Test.elements test)) in
  Printf.printf "%-34s %s ns/run  %s minor words/run\n%!" name (pp_estimate ns)
    (pp_estimate words);
  (ns, words)

let run_trace_overhead () =
  hr ();
  print_endline "Trace record-path overhead (tracing on vs off)";
  hr ();
  List.iter (fun t -> ignore (print_ns_words t)) [ test_trace_enabled; test_trace_disabled ];
  print_newline ()

(* Span record-path overhead: what every request on the serve path pays
   for cross-domain spans.  Without --obs the server holds [null_sink]s,
   so the disabled row is the default per-request tax — it must come out
   at ~0 ns and 0 minor words per run (one capacity branch, all-int
   arguments, the clock reads guarded off by [Span.enabled] upstream). *)
let make_span_test ~name sink =
  let ts = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr ts;
         Tq_obs.Span.record sink ~req_id:!ts ~phase:Tq_obs.Span.Dispatch ~start_ns:!ts
           ~dur_ns:10 ~arg:0))

let run_obs_bench ~out () =
  hr ();
  print_endline "Span record-path overhead (serve observability on vs off)";
  hr ();
  let live_sink =
    Tq_obs.Span.register
      (Tq_obs.Span.create ~capacity_per_sink:4096 ())
      (Tq_obs.Event.Dispatcher 0)
  in
  let enabled =
    print_ns_words (make_span_test ~name:"span record (enabled)" live_sink)
  in
  let disabled =
    print_ns_words (make_span_test ~name:"span record (disabled)" Tq_obs.Span.null_sink)
  in
  print_newline ();
  let num = function Some v -> Printf.sprintf "%.3f" v | None -> "null" in
  let oc = open_out out in
  output_string oc ("{\n" ^ Tq_util.Bench_meta.json_fields ());
  Printf.fprintf oc
    "\  \"benchmark\": \"cross-domain span record path (tq_serve observability)\",\n\
    \  \"enabled_ns_per_run\": %s,\n\
    \  \"enabled_minor_words_per_run\": %s,\n\
    \  \"disabled_ns_per_run\": %s,\n\
    \  \"disabled_minor_words_per_run\": %s\n\
     }\n"
    (num (fst enabled)) (num (snd enabled)) (num (fst disabled)) (num (snd disabled));
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* Profiling-path overhead: what the latency-attribution machinery
   costs.  Three numbers matter — how fast [Profile.of_records]
   decomposes a realistic span stream (an offline/stats-RPC cost, so
   "fast enough" is thousands of requests per ms), and what the two
   disabled hot-path hooks cost per request when observability is off:
   the null-sink span record (must stay 0 minor words, one branch) and
   the gc-clock check at quantum end (a [match] on a [None] the
   optimizer must not fold away, hence [Sys.opaque_identity]). *)

let synthetic_stream n =
  let lane_d = Tq_obs.Event.Dispatcher 0 in
  let lane_w = Tq_obs.Event.Worker 0 in
  let mk req_id phase lane start_ns dur_ns =
    { Tq_obs.Span.req_id; phase; lane; start_ns; dur_ns; arg = 0 }
  in
  List.concat
    (List.init n (fun i ->
         let p0 = 100_000 * i in
         (* parse 500, dispatch 300, hop, wait 400, two quanta with a
            250ns preemption gap, reply flush 600 *)
         [
           mk i Tq_obs.Span.Parse lane_d p0 500;
           mk i Tq_obs.Span.Dispatch lane_d (p0 + 500) 300;
           mk i Tq_obs.Span.Ring_hop lane_w (p0 + 1_000) 0;
           mk i Tq_obs.Span.Quantum lane_w (p0 + 1_400) 5_000;
           mk i Tq_obs.Span.Quantum lane_w (p0 + 6_650) 3_000;
           mk i Tq_obs.Span.Reply_flush lane_d (p0 + 9_650) 600;
         ]))

let run_profile_bench ~out () =
  hr ();
  print_endline "Latency-attribution overhead (decomposition + disabled hot paths)";
  hr ();
  let n = 10_000 in
  let stream = synthetic_stream n in
  let decompose_test =
    Test.make ~name:(Printf.sprintf "profile decompose (%d reqs)" n)
      (Staged.stage (fun () -> ignore (Tq_obs.Profile.of_records stream)))
  in
  let decompose = print_ns_words decompose_test in
  let span_disabled =
    print_ns_words (make_span_test ~name:"span record (disabled)" Tq_obs.Span.null_sink)
  in
  let gc_check_test =
    let gc_pause_ns : (unit -> int) option = Sys.opaque_identity None in
    let acc = ref 0 in
    Test.make ~name:"gc clock check (disabled)"
      (Staged.stage (fun () ->
           match gc_pause_ns with None -> incr acc | Some f -> acc := f ()))
  in
  let gc_check = print_ns_words gc_check_test in
  (* Correctness ride-along: the synthetic stream must decompose
     exactly, or the timing above measured the degraded path. *)
  let p = Tq_obs.Profile.of_records stream in
  assert (Tq_obs.Profile.requests p = n);
  assert (Tq_obs.Profile.invariant_ok p);
  print_newline ();
  let num = function Some v -> Printf.sprintf "%.3f" v | None -> "null" in
  let per_req = function
    | Some v -> Printf.sprintf "%.1f" (v /. float_of_int n)
    | None -> "null"
  in
  let oc = open_out out in
  output_string oc ("{\n" ^ Tq_util.Bench_meta.json_fields ());
  Printf.fprintf oc
    "\  \"benchmark\": \"latency attribution overhead (tq_obs profile)\",\n\
    \  \"decompose_requests\": %d,\n\
    \  \"decompose_ns_per_request\": %s,\n\
    \  \"decompose_exact_fraction\": %.4f,\n\
    \  \"disabled_span_ns_per_run\": %s,\n\
    \  \"disabled_span_minor_words_per_run\": %s,\n\
    \  \"disabled_gc_check_ns_per_run\": %s,\n\
    \  \"disabled_gc_check_minor_words_per_run\": %s\n\
     }\n"
    n (per_req (fst decompose))
    (Tq_obs.Profile.exact_fraction p)
    (num (fst span_disabled))
    (num (snd span_disabled))
    (num (fst gc_check))
    (num (snd gc_check));
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* Tail-forensics overhead: the BENCH_tail.json emitter.

   The reservoir sits on the dispatcher's reply pop — the per-request
   hot path — so two micro numbers are gated: the disabled offer (a
   null sink must cost one branch, 0 minor words, same discipline as
   the disabled span record) and the enabled common case (a fast
   request rejected against a full reservoir's floor: one compare, no
   allocation).  Then the macro A/B: the full serve loop at the
   BENCH_serve calibrated load with forensics off vs on (tail + spans,
   the real "tail forensics on" configuration), emitting both p99s and
   the relative penalty — the always-on claim is that the penalty
   stays under 5%. *)

(* The A/B runs below the 2-worker saturation cliff: at the smoke rate
   (150k rps) p99 is queueing-dominated and swings by whole
   milliseconds run to run, drowning any reservoir signal.  70k rps
   keeps the workers busy but the tail stable enough to gate at 5%. *)
let tail_bench_rate = 70_000.0

let make_tail_test ~name sink =
  let seq = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr seq;
         (* sojourn 1 ns: far below any filled reservoir's floor, so the
            enabled sink exercises the reject path *)
         Tq_obs.Tail.offer sink ~now_ns:1 ~seq:!seq ~class_idx:0 ~worker:0
           ~sojourn_ns:1 ~t0_ns:0 ~quantum_ns:100_000 ~cap:(-1) ~inject_depth:0
           ~deque_depth:0))

let run_tail_one ~tail_on =
  let config =
    {
      Tq_serve.Server.default_config with
      port = 0;
      workers = serve_bench_workers;
      lanes = 1;
      rx_depth = 2048;
      kv_keys = 1024;
    }
  in
  (* Spans stay on in BOTH rows (the serve smoke always runs --obs, and
     dossier attribution rides on them): the A/B isolates the tail
     reservoir's own marginal cost, not the span sinks'.  The sinks are
     sized to hold the whole run so every retained outlier is still
     attributable at the end-of-run dossier fetch — a ring that has
     overwritten an outlier's spans degrades it to unattributed. *)
  let spans = Tq_obs.Span.create ~capacity_per_sink:(1 lsl 19) () in
  let tail = if tail_on then Tq_obs.Tail.create ~k:16 () else Tq_obs.Tail.null in
  let srv = Tq_serve.Server.create ~spans ~tail config in
  let th = Thread.create (fun () -> Tq_serve.Server.serve srv) () in
  let lcfg =
    Tq_serve.Load_gen.default_config ~rate_rps:tail_bench_rate
      ~port:(Tq_serve.Server.port srv)
  in
  let r = Tq_serve.Load_gen.run lcfg in
  let dossiers =
    if tail_on then Tq_serve.Server.outlier_dossiers srv ~limit:0 else []
  in
  Tq_serve.Server.stop srv;
  Thread.join th;
  let stats = Tq_serve.Server.stats srv in
  if stats.parsed <> stats.dispatched + stats.shed then
    failwith
      (Printf.sprintf "tail bench: tail=%b parsed %d <> dispatched %d + shed %d"
         tail_on stats.parsed stats.dispatched stats.shed);
  let all = Tq_obs.Latency.recorder r.latency "all" in
  let p99 = float_of_int (Tq_obs.Latency.percentile all 0.99) /. 1e3 in
  (r, p99, dossiers)

let run_tail_bench ~out () =
  hr ();
  print_endline "Tail-forensics offer-path overhead (reservoir admit gate)";
  hr ();
  let live = Tq_obs.Tail.create ~k:16 () in
  let live_sink = Tq_obs.Tail.register live ~lane:0 in
  (* Fill the reservoir with slow entries so the benched offers below
     (sojourn 1 ns) all take the common-case reject branch. *)
  for i = 1 to 16 do
    Tq_obs.Tail.offer live_sink ~now_ns:1 ~seq:(-i) ~class_idx:0 ~worker:0
      ~sojourn_ns:1_000_000 ~t0_ns:0 ~quantum_ns:100_000 ~cap:(-1)
      ~inject_depth:0 ~deque_depth:0
  done;
  let reject =
    print_ns_words (make_tail_test ~name:"tail offer (enabled, reject)" live_sink)
  in
  let disabled =
    print_ns_words (make_tail_test ~name:"tail offer (disabled)" Tq_obs.Tail.null_sink)
  in
  print_newline ();
  hr ();
  Printf.printf
    "Tail-forensics serve A/B (%d workers, %.0f offered rps, spans on in both \
     rows, reservoir off vs k=16)\n"
    serve_bench_workers tail_bench_rate;
  hr ();
  (* p99 of a single loopback run is noisy; take the median of three
     runs per row so the committed penalty reflects the reservoir, not
     one run's scheduling luck. *)
  let median3 f =
    let runs = List.init 3 (fun _ -> f ()) in
    let sorted = List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) runs in
    List.nth sorted 1
  in
  let _, p99_off, _ = median3 (fun () -> run_tail_one ~tail_on:false) in
  Printf.printf "reservoir off: p99 %.0f us\n%!" p99_off;
  let _, p99_on, dossiers = median3 (fun () -> run_tail_one ~tail_on:true) in
  Printf.printf "reservoir on:  p99 %.0f us (%d dossiers retained)\n%!" p99_on
    (List.length dossiers);
  (* Correctness ride-along: every attributed dossier's stages must
     telescope to its sojourn exactly, or the A/B above measured a
     broken attribution path. *)
  let attributed =
    List.filter (fun d -> d.Tq_obs.Tail.d_attributed) dossiers
  in
  List.iter
    (fun d ->
      let sum = List.fold_left (fun acc (_, v) -> acc + v) 0 d.Tq_obs.Tail.d_stages in
      if sum <> d.Tq_obs.Tail.d_sojourn_ns then
        failwith
          (Printf.sprintf "tail bench: dossier %d stage sum %d <> sojourn %d"
             d.Tq_obs.Tail.d_entry.Tq_obs.Tail.e_seq sum d.Tq_obs.Tail.d_sojourn_ns))
    attributed;
  assert (dossiers <> []);
  if attributed = [] then
    failwith "tail bench: no retained dossier could be attributed to stages";
  let penalty = if p99_off > 0.0 then (p99_on -. p99_off) /. p99_off else 0.0 in
  let num = function Some v -> Printf.sprintf "%.3f" v | None -> "null" in
  let oc = open_out out in
  output_string oc ("{\n" ^ Tq_util.Bench_meta.json_fields ());
  Printf.fprintf oc
    "\  \"benchmark\": \"tail forensics overhead (tq_serve loopback)\",\n\
    \  \"host_cores\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"offered_rps\": %.0f,\n\
    \  \"reservoir_k\": 16,\n\
    \  \"disabled_offer_ns_per_run\": %s,\n\
    \  \"disabled_offer_minor_words_per_run\": %s,\n\
    \  \"reject_offer_ns_per_run\": %s,\n\
    \  \"reject_offer_minor_words_per_run\": %s,\n\
    \  \"p99_off_us\": %.1f,\n\
    \  \"p99_on_us\": %.1f,\n\
    \  \"p99_penalty_frac\": %.4f,\n\
    \  \"retained\": %d,\n\
    \  \"attributed_fraction\": %.4f\n\
     }\n"
    (Domain.recommended_domain_count ())
    serve_bench_workers tail_bench_rate
    (num (fst disabled)) (num (snd disabled))
    (num (fst reject)) (num (snd reject))
    p99_off p99_on penalty (List.length dossiers)
    (if dossiers = [] then 0.0
     else float_of_int (List.length attributed) /. float_of_int (List.length dossiers));
  close_out oc;
  Printf.printf "wrote %s (p99 penalty %.1f%%)\n%!" out (100.0 *. penalty)

let run_microbenchmarks () =
  hr ();
  print_endline "Micro-benchmarks of library primitives (ns per run, OLS fit)";
  hr ();
  let tests =
    [
      test_heap;
      test_prng;
      test_sim_event;
      test_fiber;
      test_probe;
      test_spsc;
      test_skiplist;
      test_cache;
      test_deque;
      test_backoff;
      test_serve_codec;
      test_admission;
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~stabilize:false ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns_per_run ] -> Printf.printf "%-34s %10.1f ns/run\n" name ns_per_run
          | _ -> Printf.printf "%-34s (no estimate)\n" name)
        analyzed)
    tests;
  print_newline ()

let () =
  let jobs = ref 0 in
  let use_cache = ref true in
  let parallel_bench = ref None in
  let obs_bench = ref None in
  let profile_bench = ref None in
  let serve_bench = ref None in
  let steal_bench = ref None in
  let tail_bench = ref None in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 1 -> jobs := v
        | _ -> prerr_endline "bench: --jobs expects a positive integer"; exit 2);
        parse rest
    | "--no-cache" :: rest ->
        use_cache := false;
        parse rest
    | "--parallel-bench" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        parallel_bench := Some path;
        parse rest
    | "--parallel-bench" :: rest ->
        parallel_bench := Some "BENCH_parallel.json";
        parse rest
    | "--obs-bench" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        obs_bench := Some path;
        parse rest
    | "--obs-bench" :: rest ->
        obs_bench := Some "BENCH_obs_serve.json";
        parse rest
    | "--profile-bench" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        profile_bench := Some path;
        parse rest
    | "--profile-bench" :: rest ->
        profile_bench := Some "BENCH_profile.json";
        parse rest
    | "--serve-bench" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        serve_bench := Some path;
        parse rest
    | "--serve-bench" :: rest ->
        serve_bench := Some "BENCH_serve.json";
        parse rest
    | "--steal-bench" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        steal_bench := Some path;
        parse rest
    | "--steal-bench" :: rest ->
        steal_bench := Some "BENCH_steal.json";
        parse rest
    | "--tail-bench" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
        tail_bench := Some path;
        parse rest
    | "--tail-bench" :: rest ->
        tail_bench := Some "BENCH_tail.json";
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = if !jobs = 0 then Tq_par.Domain_pool.default_jobs () else !jobs in
  match
    ( !parallel_bench, !obs_bench, !profile_bench, !serve_bench, !steal_bench,
      !tail_bench )
  with
  | Some out, _, _, _, _, _ -> run_parallel_bench ~out ()
  | None, Some out, _, _, _, _ -> run_obs_bench ~out ()
  | None, None, Some out, _, _, _ -> run_profile_bench ~out ()
  | None, None, None, Some out, _, _ -> run_serve_bench ~out ()
  | None, None, None, None, Some out, _ -> run_steal_bench ~out ()
  | None, None, None, None, None, Some out -> run_tail_bench ~out ()
  | None, None, None, None, None, None ->
      run_experiments ~jobs ~use_cache:!use_cache ();
      run_microbenchmarks ();
      run_trace_overhead ();
      hr ();
      print_endline "Done. See EXPERIMENTS.md for paper-vs-measured commentary.";
      hr ()
