(* Real multicore forced multitasking.

   Spawns worker domains connected to a JSQ dispatcher by lock-free SPSC
   rings and runs a bimodal batch of jobs with wall-clock quanta — the
   paper's architecture on actual parallel hardware (with the GC-pause
   caveat from DESIGN.md).

     dune exec examples/parallel_demo.exe *)

let busy_work ~ms () =
  (* CPU-bound loop with probes at loop granularity. *)
  let deadline = Unix.gettimeofday () +. (ms /. 1e3) in
  let acc = ref 0 in
  while Unix.gettimeofday () < deadline do
    for _ = 1 to 64 do
      acc := (!acc * 31) + 7
    done;
    Tq.Runtime.Probe_api.probe ()
  done;
  ignore (Sys.opaque_identity !acc)

let () =
  let workers = max 2 (min 4 (Domain.recommended_domain_count () - 1)) in
  (* 95% short jobs (1ms) and 5% long jobs (20ms), 1ms quanta. *)
  let jobs =
    Array.init 60 (fun i ->
        if i mod 20 = 0 then busy_work ~ms:20.0 else busy_work ~ms:1.0)
  in
  let started = Unix.gettimeofday () in
  let pool = Tq.Runtime.Parallel.create ~workers ~quantum_ns:1_000_000 () in
  Array.iter
    (fun job ->
      while not (Tq.Runtime.Parallel.submit pool (fun ~wid:_ -> job ())) do
        Domain.cpu_relax ()
      done)
    jobs;
  let stats = Tq.Runtime.Parallel.shutdown pool in
  let elapsed = Unix.gettimeofday () -. started in
  Printf.printf "ran %d jobs on %d worker domains in %.2fs\n" stats.completed workers elapsed;
  Printf.printf "preemptive yields: %d (long jobs preempted at ~1ms quanta)\n" stats.yields;
  Array.iteri
    (fun i c -> Printf.printf "  worker %d finished %d jobs\n" i c)
    stats.per_worker_finished
