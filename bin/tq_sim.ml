(* tq_sim: command-line driver for the Tiny Quanta reproduction.

   Subcommands:
     list                      enumerate reproducible experiments
     run <id>...               regenerate specific figures/tables
     all                       regenerate everything
     sweep                     custom latency-vs-load sweep
     trace <system> <workload> record one run and export an inspectable schedule
     probe-place <program>     show TQ probe placement on a benchmark program *)

open Cmdliner

let list_cmd =
  let doc = "List every reproducible experiment (figures and tables)." in
  let run () =
    List.iter
      (fun (e : Tq_experiments.Registry.experiment) ->
        Printf.printf "%-12s %s\n" e.id e.summary)
      Tq_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --jobs 0 means auto: TQ_JOBS or the recommended domain count. *)
let resolve_jobs jobs = if jobs = 0 then Tq_par.Domain_pool.default_jobs () else max 1 jobs

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"worker domains for the sweep (0 = auto: \\$(b,TQ_JOBS) or the \
                 recommended domain count)")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"recompute every point, bypassing the $(b,_tq_cache/) result cache")

let run_ids jobs no_cache ids =
  let missing = List.filter (fun id -> Tq_experiments.Registry.find id = None) ids in
  if missing <> [] then begin
    Printf.eprintf "unknown experiment id(s): %s\n" (String.concat ", " missing);
    exit 1
  end;
  let experiments = List.filter_map Tq_experiments.Registry.find ids in
  let cache =
    if no_cache then Tq_par.Result_cache.disabled () else Tq_par.Result_cache.create ()
  in
  let stats =
    Tq_par.Sweep.run_and_print ~jobs:(resolve_jobs jobs) ~cache experiments
  in
  Printf.eprintf "[%s]\n" (Tq_par.Sweep.summary stats)

let run_cmd =
  let doc =
    "Regenerate the named figures/tables (see $(b,list)).  Points are fanned out \
     over domains and served from $(b,_tq_cache/) when their inputs are unchanged."
  in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_ids $ jobs_arg $ no_cache_arg $ ids)

let all_cmd =
  let doc = "Regenerate every figure and table (set TQ_BENCH_SCALE to trade time for precision)." in
  let run jobs no_cache =
    run_ids jobs no_cache
      (List.map (fun (e : Tq_experiments.Registry.experiment) -> e.id)
         Tq_experiments.Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ jobs_arg $ no_cache_arg)

(* --- shared system/workload resolution --- *)

let workload_names =
  List.map (fun (w : Tq_workload.Service_dist.t) -> w.name) Tq_workload.Table1.all

let system_names =
  [ "tq"; "tq-steal"; "tq-las"; "tq-fcfs"; "tq-rand"; "tq-power-two"; "shinjuku";
    "concord"; "caladan"; "caladan-iokernel" ]

let find_workload name =
  match Tq_workload.Table1.find name with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown workload %s (try: %s)\n" name
        (String.concat ", " workload_names);
      exit 1

let find_system name ~quantum_ns =
  match name with
  | "tq" -> Tq_sched.Presets.tq ~quantum_ns ()
  | "tq-steal" -> Tq_sched.Presets.tq_steal ~quantum_ns ()
  | "tq-las" -> Tq_sched.Presets.tq_las ()
  | "tq-fcfs" -> Tq_sched.Presets.tq_fcfs ()
  | "tq-rand" -> Tq_sched.Presets.tq_rand ~quantum_ns ()
  | "tq-power-two" -> Tq_sched.Presets.tq_power_two ~quantum_ns ()
  | "shinjuku" -> Tq_sched.Presets.shinjuku ~quantum_ns ()
  | "concord" -> Tq_sched.Presets.concord ~quantum_ns ()
  | "caladan" -> Tq_sched.Presets.caladan ~mode:Tq_sched.Caladan.Directpath ()
  | "caladan-iokernel" -> Tq_sched.Presets.caladan ~mode:Tq_sched.Caladan.Iokernel ()
  | other ->
      Printf.eprintf "unknown system %s (try: %s)\n" other (String.concat ", " system_names);
      exit 1

(* --- sweep --- *)

let sweep system_name workload_name quantum_us loads duration_ms seed trace_out jobs =
  let workload = find_workload workload_name in
  let quantum_ns = Tq_util.Time_unit.us quantum_us in
  let system = find_system system_name ~quantum_ns in
  let capacity = Tq_workload.Arrivals.capacity_rps ~cores:16 workload in
  let duration_ns = Tq_util.Time_unit.ms duration_ms in
  let seed = Int64.of_int seed in
  let t =
    Tq_util.Text_table.create
      ~title:
        (Printf.sprintf "%s on %s (q=%gus, capacity %.2f Mrps)" system_name workload_name
           quantum_us (capacity /. 1e6))
      ~columns:
        ([ "load"; "rate(Mrps)" ]
        @ List.concat_map
            (fun i ->
              let name = Tq_workload.Service_dist.class_name workload i in
              [ name ^ " p50(us)"; name ^ " p99.9(us)" ])
            (List.init (Tq_workload.Service_dist.class_count workload) Fun.id))
  in
  let last = List.length loads - 1 in
  (* Each load point runs on its own Seed_stream generator keyed by
     (sweep key, point index, seed): results do not depend on --jobs or
     on completion order.  With --trace, the highest-index load point
     (the most interesting schedule) records events for export. *)
  let sweep_key = Printf.sprintf "sweep:%s:%s:%g" system_name workload_name quantum_us in
  let results, _ =
    Tq_par.Sweep.grid ~jobs:(resolve_jobs jobs) ~experiment:sweep_key ~seed
      ~f:(fun ~rng ~index load ->
        let rate = load *. capacity in
        let obs =
          match trace_out with
          | Some _ when index = last -> Some (Tq_obs.Obs.create ())
          | _ -> None
        in
        let point_seed = Tq_util.Prng.bits64 rng in
        let r =
          Tq_sched.Experiment.run ~seed:point_seed ?obs ~system ~workload
            ~rate_rps:rate ~duration_ns ()
        in
        (load, r, obs))
      (Array.of_list loads)
  in
  Array.iter
    (fun (load, (r : Tq_sched.Experiment.result), obs) ->
      let rate = load *. capacity in
      (match (obs, trace_out) with
      | Some obs, Some path ->
          Tq_obs.Chrome_trace.write_file obs.Tq_obs.Obs.trace path;
          Printf.printf "wrote %s (%d events, %d overwritten) for load %.0f%%\n" path
            (Tq_obs.Trace.length obs.Tq_obs.Obs.trace)
            (Tq_obs.Trace.dropped obs.Tq_obs.Obs.trace)
            (100.0 *. load)
      | _ -> ());
      let cells =
        List.concat_map
          (fun i ->
            [
              Tq_util.Text_table.cell_f
                (Tq_workload.Metrics.sojourn_percentile r.metrics ~class_idx:i 50.0 /. 1e3);
              Tq_util.Text_table.cell_f
                (Tq_workload.Metrics.sojourn_percentile r.metrics ~class_idx:i 99.9 /. 1e3);
            ])
          (List.init (Tq_workload.Service_dist.class_count workload) Fun.id)
      in
      Tq_util.Text_table.add_row t
        (Printf.sprintf "%.0f%%" (100.0 *. load)
        :: Printf.sprintf "%.2f" (rate /. 1e6)
        :: cells))
    results;
  Tq_util.Text_table.print t

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed, for reproducible runs")

let sweep_cmd =
  let doc = "Run a custom latency-vs-load sweep for one system and workload." in
  let system =
    Arg.(value & opt string "tq"
         & info [ "system" ] ~docv:"SYSTEM" ~doc:(String.concat " | " system_names))
  in
  let workload =
    Arg.(value & opt string "extreme-bimodal"
         & info [ "workload" ] ~docv:"WORKLOAD" ~doc:"Table 1 workload name")
  in
  let quantum = Arg.(value & opt float 2.0 & info [ "quantum-us" ] ~doc:"quantum size in us") in
  let loads =
    Arg.(value & opt (list float) [ 0.3; 0.5; 0.7; 0.9 ]
         & info [ "loads" ] ~doc:"load fractions of capacity")
  in
  let duration =
    Arg.(value & opt float 50.0 & info [ "duration-ms" ] ~doc:"simulated duration per point")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"record the last load point and write a Chrome trace-event JSON")
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const sweep $ system $ workload $ quantum $ loads $ duration $ seed_arg $ trace_out
          $ jobs_arg)

(* --- trace --- *)

let trace_run system_name workload_name quantum_us load duration_ms seed out csv_out
    dump_events =
  let workload = find_workload workload_name in
  let quantum_ns = Tq_util.Time_unit.us quantum_us in
  let system = find_system system_name ~quantum_ns in
  let capacity = Tq_workload.Arrivals.capacity_rps ~cores:16 workload in
  let rate = load *. capacity in
  let duration_ns = Tq_util.Time_unit.ms duration_ms in
  let obs = Tq_obs.Obs.create () in
  let r =
    Tq_sched.Experiment.run ~seed:(Int64.of_int seed) ~obs ~system ~workload
      ~rate_rps:rate ~duration_ns ()
  in
  Printf.printf "%s on %s: load %.0f%% (%.2f Mrps), %.1f ms simulated, %d requests, %d sim events\n"
    system_name workload_name (100.0 *. load) (rate /. 1e6) duration_ms r.offered r.events;
  Tq_obs.Chrome_trace.write_file obs.Tq_obs.Obs.trace out;
  Printf.printf "wrote %s: %d trace events in buffer (%d recorded, %d overwritten)\n" out
    (Tq_obs.Trace.length obs.Tq_obs.Obs.trace)
    (Tq_obs.Trace.total obs.Tq_obs.Obs.trace)
    (Tq_obs.Trace.dropped obs.Tq_obs.Obs.trace);
  print_endline "open it in https://ui.perfetto.dev (one lane per dispatcher/worker core)";
  print_newline ();
  print_endline "counters:";
  print_string (Tq_obs.Counters.dump obs.Tq_obs.Obs.counters);
  print_newline ();
  (match r.timeseries with
  | Some ts ->
      print_string
        (Tq_obs.Timeseries.render
           ~title:(Printf.sprintf "%s on %s: sampled occupancy" system_name workload_name)
           ts);
      (match csv_out with
      | Some path ->
          let oc = open_out path in
          output_string oc (Tq_obs.Timeseries.to_csv ts);
          close_out oc;
          Printf.printf "wrote %s (%d samples)\n" path (Tq_obs.Timeseries.length ts)
      | None -> ())
  | None -> ());
  if dump_events > 0 then begin
    print_newline ();
    print_string (Tq_obs.Text_dump.dump ~limit:dump_events obs.Tq_obs.Obs.trace)
  end

let trace_cmd =
  let doc =
    "Record one run under the event tracer and export an inspectable schedule: a \
     Chrome trace-event JSON (Perfetto), the counter registry, and sampled \
     occupancy time series."
  in
  let system =
    Arg.(value & pos 0 string "tq" & info [] ~docv:"SYSTEM" ~doc:(String.concat " | " system_names))
  in
  let workload =
    Arg.(value & pos 1 string "extreme-bimodal"
         & info [] ~docv:"WORKLOAD" ~doc:"Table 1 workload name")
  in
  let quantum = Arg.(value & opt float 2.0 & info [ "quantum-us" ] ~doc:"quantum size in us") in
  let load =
    Arg.(value & opt float 0.7 & info [ "load" ] ~doc:"load fraction of 16-core capacity")
  in
  let duration =
    Arg.(value & opt float 2.0
         & info [ "duration-ms" ]
             ~doc:"simulated duration (keep small: tracing records every event)")
  in
  let out =
    Arg.(value & opt string "tq_trace.json"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Chrome trace-event JSON output path")
  in
  let csv_out =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"also write the occupancy time series as CSV")
  in
  let dump_events =
    Arg.(value & opt int 0
         & info [ "events" ] ~docv:"N" ~doc:"also print the last N events as text")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace_run $ system $ workload $ quantum $ load $ duration $ seed_arg $ out
          $ csv_out $ dump_events)

(* --- faults --- *)

let faults_run system_name workload_name quick json =
  let workload = find_workload workload_name in
  let system = find_system system_name ~quantum_ns:(Tq_util.Time_unit.us 2.0) in
  if json then begin
    let points = Tq_experiments.Faults.goodput_points ~quick ~system ~workload () in
    let n = List.length points in
    print_string "{\n";
    print_string (Tq_util.Bench_meta.json_fields ());
    Printf.printf "  \"experiment\": \"faults\",\n";
    Printf.printf "  \"system\": %S,\n" system_name;
    Printf.printf "  \"workload\": %S,\n" workload.Tq_workload.Service_dist.name;
    Printf.printf "  \"quick\": %b,\n" quick;
    Printf.printf "  \"points\": [\n";
    List.iteri
      (fun i (intensity, (r : Tq_fault.Fault_experiment.result)) ->
        Printf.printf
          "    {\"stall_intensity\": %g, \"goodput_ratio\": %.4f, \"goodput_rps\": %.0f, \
           \"eventual_p99_us\": %.2f, \"retries\": %d, \"retries_exhausted\": %d, \
           \"lost\": %d, \"stranded\": %d, \"stalls_injected\": %d}%s\n"
          intensity
          (Tq_fault.Fault_experiment.goodput_ratio r)
          r.goodput_rps
          (Tq_workload.Metrics.overall_eventual_percentile r.metrics 99.0 /. 1e3)
          (Tq_workload.Metrics.retries r.metrics)
          (Tq_workload.Metrics.retries_exhausted r.metrics)
          r.lost r.stranded r.stalls_injected
          (if i = n - 1 then "" else ","))
      points;
    print_string "  ]\n}\n"
  end
  else
    List.iter Tq_util.Text_table.print
      (Tq_experiments.Faults.sweep ~quick ~system ~system_name ~workload ())

let faults_cmd =
  let doc =
    "Sweep fault intensity against one system and workload: goodput/tail degradation \
     under core stalls, recovery from a permanent core failure, and overload \
     protection by admission control."
  in
  let system =
    Arg.(value & pos 0 string "tq" & info [] ~docv:"SYSTEM" ~doc:(String.concat " | " system_names))
  in
  let workload =
    Arg.(value & pos 1 string "high-bimodal"
         & info [] ~docv:"WORKLOAD" ~doc:"Table 1 workload name (or table1-a..f alias)")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"short runs, fewer sweep points (CI smoke)")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"print the stall-intensity goodput curve as JSON instead of tables")
  in
  Cmd.v (Cmd.info "faults" ~doc) Term.(const faults_run $ system $ workload $ quick $ json)

(* --- adaptive --- *)

let adaptive_run workload_name quick json =
  let workload = find_workload workload_name in
  let outcomes = Tq_experiments.Adaptive.run_all ~quick ~workload () in
  if json then begin
    let n = List.length outcomes in
    print_string "{\n";
    print_string (Tq_util.Bench_meta.json_fields ());
    Printf.printf "  \"experiment\": \"adaptive\",\n";
    Printf.printf "  \"workload\": %S,\n" workload.Tq_workload.Service_dist.name;
    Printf.printf "  \"quick\": %b,\n" quick;
    Printf.printf "  \"scenarios\": [\n";
    List.iteri
      (fun i (o : Tq_experiments.Adaptive.outcome) ->
        Printf.printf "    {\"scenario\": %S, \"load\": %g, \"stall_intensity\": %g,\n"
          o.spec.scenario o.spec.load o.spec.stall_intensity;
        Printf.printf
          "     \"adaptive_ratio\": %.4f, \"best_static_ratio\": %.4f, \"margin\": %.4f,\n"
          o.adaptive_ratio o.best_static_ratio o.margin;
        Printf.printf "     \"rows\": [\n";
        let m = List.length o.rows in
        List.iteri
          (fun j (row : Tq_experiments.Adaptive.row) ->
            let r = row.result in
            Printf.printf
              "       {\"setting\": %S, \"gated\": %b, \"goodput_ratio\": %.4f, \
               \"goodput_rps\": %.0f, \"eventual_p99_us\": %.2f, \"shed\": %d, \
               \"control_ticks\": %d, \"control_decisions\": %d}%s\n"
              row.label row.gated
              (Tq_fault.Fault_experiment.goodput_ratio r)
              r.goodput_rps
              (Tq_workload.Metrics.overall_eventual_percentile r.metrics 99.0 /. 1e3)
              (Tq_workload.Metrics.rejections r.metrics)
              r.control_ticks r.control_decisions
              (if j = m - 1 then "" else ","))
          o.rows;
        Printf.printf "     ]}%s\n" (if i = n - 1 then "" else ","))
      outcomes;
    print_string "  ]\n}\n"
  end
  else
    List.iter
      (fun o -> Tq_util.Text_table.print (Tq_experiments.Adaptive.table o))
      outcomes

let adaptive_cmd =
  let doc =
    "Feedback-controlled quanta and admission (Tq_control) against every static \
     quantum setting, under heavy core stalls and sustained overload; the adaptive \
     row must match or beat the best static row on goodput-under-deadline."
  in
  let workload =
    Arg.(value & pos 0 string "high-bimodal"
         & info [] ~docv:"WORKLOAD" ~doc:"Table 1 workload name (or table1-a..f alias)")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"short runs, smaller static sweep (CI smoke)")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"print the scenario outcomes as JSON instead of tables")
  in
  Cmd.v (Cmd.info "adaptive" ~doc) Term.(const adaptive_run $ workload $ quick $ json)

(* --- probe-place --- *)

let probe_place name bound =
  let named =
    match Tq_instrument.Bench_programs.find name with
    | Some p -> Some p
    | None ->
        if name = "rocksdb-get" then Some Tq_instrument.Bench_programs.rocksdb_get
        else if name = "rocksdb-scan" then Some Tq_instrument.Bench_programs.rocksdb_scan
        else None
  in
  match named with
  | None ->
      Printf.eprintf "unknown program %s (see DESIGN.md for the suite)\n" name;
      exit 1
  | Some named ->
      let prog = Tq_instrument.Bench_programs.lowered named in
      let tq = Tq_instrument.Tq_pass.instrument ~config:{ Tq_instrument.Tq_pass.bound; non_reentrant = [] } prog in
      let ci = Tq_instrument.Ci_pass.instrument prog in
      Printf.printf "program %s: %d instructions static\n" name
        (List.fold_left
           (fun acc (_, f) -> acc + Tq_ir.Cfg.func_instruction_count f)
           0 prog.Tq_ir.Cfg.funcs);
      Printf.printf "CI probes: %d, TQ probes: %d (bound %d instructions)\n\n"
        (Tq_ir.Cfg.program_probe_count ci)
        (Tq_ir.Cfg.program_probe_count tq)
        bound;
      List.iter
        (fun (_, f) -> Format.printf "%a@." Tq_ir.Cfg.pp_func f)
        tq.Tq_ir.Cfg.funcs

let probe_place_cmd =
  let doc = "Instrument a benchmark program with the TQ pass and dump its CFG." in
  let prog_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  let bound =
    Arg.(value & opt int 400 & info [ "bound" ] ~doc:"max instructions between probes")
  in
  Cmd.v (Cmd.info "probe-place" ~doc) Term.(const probe_place $ prog_arg $ bound)

let () =
  let doc = "Tiny Quanta reproduction: experiments and tools" in
  let info = Cmd.info "tq_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            all_cmd;
            sweep_cmd;
            trace_cmd;
            faults_cmd;
            adaptive_cmd;
            probe_place_cmd;
          ]))
