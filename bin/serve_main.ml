(* tq_serve: the live multicore RPC server.

   Binds a TCP port, spawns worker domains, and runs the two-level
   dispatch loop until SIGINT/SIGTERM (or --duration-s) triggers a
   graceful drain.  Point tq_load at it. *)

open Cmdliner

let serve host port cores lanes quantum_us ring rx_depth admission steal kv_keys
    pool_bufs pool_buf_bytes duration_s stats_out obs obs_capacity trace_out
    gc_events adaptive ctl_latency_us ctl_interval_ms heartbeat_ms
    missed_heartbeats faults tail_k tail_threshold_us tail_window_ms
    tail_trace_out metrics_port =
  if lanes < 1 || lanes > cores then begin
    Printf.eprintf "tq_serve: --lanes must be in [1, --cores] (got %d of %d)\n" lanes
      cores;
    exit 1
  end;
  let admission =
    match admission with
    | "accept-all" -> Tq_sched.Admission.Accept_all
    | s -> (
        match Scanf.sscanf_opt s "queue-limit:%d" (fun n -> n) with
        | Some n -> Tq_sched.Admission.Queue_limit { max_in_system = n }
        | None -> (
            match Scanf.sscanf_opt s "ewma:%d" (fun n -> n) with
            | Some threshold_us ->
                Tq_sched.Admission.Ewma_sojourn
                  { threshold_ns = threshold_us * 1000; alpha = 0.05 }
            | None ->
                Printf.eprintf
                  "unknown admission policy %s (try: accept-all, queue-limit:N, ewma:USEC)\n"
                  s;
                exit 1))
  in
  let quantum_ns = Tq_util.Time_unit.us quantum_us in
  (* The controller's knob ranges anchor on the operator's static
     choices: quanta may shrink well below the configured quantum (more
     interleaving under pressure) but not above 2x it; the shed limit
     lives under the rx_depth hard gate. *)
  let controller =
    if not adaptive then None
    else
      Some
        {
          (Tq_control.Controller.default_config ~quantum_initial_ns:quantum_ns
             ~shed_initial:(min rx_depth (32 * cores)))
          with
          Tq_control.Controller.interval_ns =
            int_of_float (ctl_interval_ms *. 1e6);
          objective =
            {
              Tq_obs.Slo.name = "serve";
              latency_ns = int_of_float (ctl_latency_us *. 1e3);
              goodput = 0.99;
            };
          quantum_min_ns = max 1_000 (quantum_ns / 32);
          quantum_max_ns = 2 * quantum_ns;
          shed_min = cores;
          shed_max = rx_depth;
        }
  in
  let fault_events =
    match faults with
    | None -> []
    | Some spec -> (
        match Tq_fault.Live.parse spec with
        | Ok evs -> evs
        | Error msg ->
            Printf.eprintf "tq_serve: %s\n" msg;
            exit 1)
  in
  let config =
    {
      Tq_serve.Server.default_config with
      host;
      port;
      workers = cores;
      lanes;
      quantum_ns;
      ring_capacity = ring;
      rx_depth;
      admission;
      steal;
      kv_keys;
      adaptive = controller;
      heartbeat_interval_s = heartbeat_ms /. 1e3;
      missed_heartbeats;
      pool_bufs;
      pool_buf_bytes;
    }
  in
  let tail_on = tail_k > 0 || tail_trace_out <> None in
  let spans =
    (* Tail dossiers attribute stages from the span buffers, so tail
       sampling pulls spans in with it. *)
    if obs || trace_out <> None || tail_on then
      Tq_obs.Span.create ~capacity_per_sink:obs_capacity ()
    else Tq_obs.Span.null
  in
  let tail =
    if tail_on then
      Tq_obs.Tail.create
        ~k:(if tail_k > 0 then tail_k else 16)
        ~threshold_ns:(int_of_float (tail_threshold_us *. 1e3))
        ~window_ns:(int_of_float (tail_window_ms *. 1e6))
        ()
    else Tq_obs.Tail.null
  in
  (* GC telemetry rides along whenever observability is on (spans get a
     gc track, stalls get attributed); --no-gc-events opts out. *)
  let gc =
    if gc_events && (obs || trace_out <> None) then
      Some (Tq_obs.Gc_events.start ~spans ())
    else None
  in
  let server = Tq_serve.Server.create ~spans ~tail ?gc config in
  let metrics_plane =
    match metrics_port with
    | None -> None
    | Some mp ->
        let h =
          Tq_serve.Http_expo.start ~host ~port:mp
            ~metrics:(fun () -> Tq_serve.Server.prometheus server)
            ~outliers:(fun () ->
              if tail_on then Tq_serve.Server.outliers_json server ~limit:0
              else "{\"error\": \"tail forensics off: run with --tail-k\"}\n")
            ~healthz:(fun () -> true)
            ()
        in
        Printf.printf
          "tq_serve: metrics on http://%s:%d/metrics (/outliers, /healthz)\n%!"
          host
          (Tq_serve.Http_expo.port h);
        Some h
  in
  (if fault_events <> [] then begin
     let live = Tq_fault.Live.create fault_events in
     let actions =
       {
         Tq_fault.Live.stall =
           (fun ~worker ~duration_ns ->
             Printf.eprintf "tq_serve: FAULT stall w%d %.1fms\n%!" worker
               (float_of_int duration_ns /. 1e6);
             Tq_serve.Server.inject_stall server ~worker ~duration_ns);
         kill =
           (fun ~worker ->
             Printf.eprintf "tq_serve: FAULT kill w%d\n%!" worker;
             Tq_serve.Server.kill_worker server ~worker);
         pause =
           (fun ~duration_ns ->
             Printf.eprintf "tq_serve: FAULT dispatcher pause %.1fms\n%!"
               (float_of_int duration_ns /. 1e6);
             Tq_serve.Server.pause_dispatcher server ~duration_ns);
       }
     in
     Tq_serve.Server.on_tick server (fun ~now_ns ->
         ignore (Tq_fault.Live.poll live ~now_ns actions : int))
   end);
  let stop _ = Tq_serve.Server.stop server in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop));
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  (match duration_s with
  | Some s ->
      ignore (Sys.signal Sys.sigalrm (Sys.Signal_handle stop));
      ignore (Unix.alarm (max 1 (int_of_float (Float.ceil s))))
  | None -> ());
  Printf.printf
    "tq_serve: listening on %s:%d (%d worker cores, %d lane%s, %gus quanta)\n%!" host
    (Tq_serve.Server.port server)
    cores lanes
    (if lanes = 1 then "" else "s")
    quantum_us;
  Tq_serve.Server.serve server;
  let s = Tq_serve.Server.stats server in
  let summary =
    Printf.sprintf
      "{\"connections\": %d, \"parsed\": %d, \"dispatched\": %d, \"completed\": %d, \
       \"shed\": %d, \"lost\": %d, \"dropped\": %d, \"stats_served\": %d, \
       \"protocol_errors\": %d, \"orphaned\": %d, \
       \"duplicates\": %d, \"redispatched\": %d, \"dead_workers\": %d}"
      s.connections s.parsed s.dispatched s.completed s.shed s.lost s.dropped
      s.stats_served s.protocol_errors s.orphaned s.duplicates s.redispatched
      s.dead_workers
  in
  Printf.printf "tq_serve: drained. %s\n%!" summary;
  (match stats_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (summary ^ "\n");
      close_out oc
  | None -> ());
  Option.iter Tq_serve.Http_expo.stop metrics_plane;
  (* Stop the GC consumer before the trace is written so the last
     pauses make the gc track. *)
  Option.iter Tq_obs.Gc_events.stop gc;
  (match trace_out with
  | Some path ->
      Tq_obs.Span.write_file spans path;
      Printf.printf "tq_serve: wrote span trace to %s (%d spans, %d dropped)\n%!" path
        (Tq_obs.Span.total spans) (Tq_obs.Span.dropped spans)
  | None -> ());
  (match tail_trace_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Tq_serve.Server.tail_trace server);
      close_out oc;
      Printf.printf
        "tq_serve: wrote outlier-only trace to %s (%d retained of %d offered)\n%!"
        path
        (Tq_obs.Tail.retained tail)
        (Tq_obs.Tail.offered tail)
  | None -> ());
  (* the drain invariant: everything admitted was answered *)
  if s.dispatched <> s.completed then begin
    Printf.eprintf "tq_serve: LOST %d in-flight requests\n" (s.dispatched - s.completed);
    exit 1
  end

let () =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"bind address")
  in
  let port =
    Arg.(value & opt int 7770 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral)")
  in
  let cores =
    Arg.(value & opt int 4 & info [ "cores" ] ~docv:"N" ~doc:"worker domains (level 2 cores)")
  in
  let lanes =
    Arg.(value & opt int 1
         & info [ "lanes" ] ~docv:"N"
             ~doc:"dispatcher lanes (level 1): independent readiness loops sharing \
                   the listener via accept spreading, each owning a disjoint \
                   worker slice; must not exceed --cores")
  in
  let pool_bufs =
    Arg.(value & opt int 1024
         & info [ "pool-bufs" ] ~docv:"N"
             ~doc:"reply framing buffers kept on the shared zero-copy pool")
  in
  let pool_buf_bytes =
    Arg.(value & opt int 4096
         & info [ "pool-buf-bytes" ] ~docv:"BYTES"
             ~doc:"size of each pooled framing buffer (larger responses fall back \
                   to exact fresh allocations)")
  in
  let quantum =
    Arg.(value & opt float 100.0 & info [ "quantum-us" ] ~doc:"forced-multitasking quantum")
  in
  let ring =
    Arg.(value & opt int 256 & info [ "ring" ] ~docv:"N" ~doc:"dispatcher->worker ring capacity")
  in
  let rx_depth =
    Arg.(value & opt int 1024
         & info [ "rx-depth" ] ~docv:"N"
             ~doc:"shed when pool-wide in-flight requests reach N (RX-ring admission)")
  in
  let admission =
    Arg.(value & opt string "accept-all"
         & info [ "admission" ] ~docv:"POLICY"
             ~doc:"extra admission gate: accept-all | queue-limit:N | ewma:USEC")
  in
  let steal =
    let onoff = Arg.enum [ ("on", true); ("off", false) ] in
    Arg.(value & opt onoff false
         & info [ "steal" ] ~docv:"on|off"
             ~doc:"idle-time work stealing inside each lane's worker slice: an \
                   idle worker takes half of the most-loaded sibling's \
                   queued-but-unstarted (unkeyed) requests; surfaces as \
                   runtime.steals/steal_items/steal_failures and Steal spans")
  in
  let kv_keys =
    Arg.(value & opt int 1024 & info [ "kv-keys" ] ~docv:"N" ~doc:"prepopulated keys per worker store")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration-s" ] ~docv:"SEC" ~doc:"drain and exit after SEC seconds (default: run until SIGINT/SIGTERM)")
  in
  let stats_out =
    Arg.(value & opt (some string) None
         & info [ "stats-out" ] ~docv:"FILE" ~doc:"also write the final accounting JSON to FILE")
  in
  let obs =
    Arg.(value & flag
         & info [ "obs" ]
             ~doc:"enable cross-domain request spans (dispatch/quantum/stall \
                   timelines, served by the Stats RPC trace view)")
  in
  let obs_capacity =
    Arg.(value & opt int 16_384
         & info [ "obs-capacity" ] ~docv:"N"
             ~doc:"span-buffer capacity per domain (oldest overwritten)")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"write the merged span trace as Chrome/Perfetto JSON on exit \
                   (implies --obs)")
  in
  let gc_events =
    Arg.(value & opt bool true
         & info [ "gc-events" ] ~docv:"BOOL"
             ~doc:"with --obs/--trace-out, consume OCaml Runtime_events: GC pause \
                   spans on per-domain gc tracks, gc.* counters, and stall \
                   attribution (runtime.stall_gc vs stall_other); default true")
  in
  let adaptive =
    Arg.(value & flag
         & info [ "adaptive" ]
             ~doc:"close the loop: a feedback controller samples burn rate and \
                   backlog from the dispatcher loop and retunes per-class quanta \
                   and the admission shed limit live (control.* counters, \
                   stats-RPC control view)")
  in
  let ctl_latency_us =
    Arg.(value & opt float 1000.0
         & info [ "ctl-latency-us" ] ~docv:"USEC"
             ~doc:"with --adaptive: the latency objective the controller holds \
                   (completions above it burn error budget)")
  in
  let ctl_interval_ms =
    Arg.(value & opt float 10.0
         & info [ "ctl-interval-ms" ] ~docv:"MS"
             ~doc:"with --adaptive: controller sampling period")
  in
  let heartbeat_ms =
    Arg.(value & opt float 50.0
         & info [ "heartbeat-ms" ] ~docv:"MS"
             ~doc:"worker liveness sampling period (0 disables the monitor)")
  in
  let missed_heartbeats =
    Arg.(value & opt int 4
         & info [ "missed-heartbeats" ] ~docv:"N"
             ~doc:"no-progress windows before a worker holding work is declared \
                   dead and its requests are re-dispatched")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"live fault schedule, times in ms from serve start: \
                   stall@T:wN:D | kill@T:wN | pause@T:D, comma-separated \
                   (e.g. 'kill@500:w1,stall@800:w0:50')")
  in
  let tail_k =
    Arg.(value & opt int 0
         & info [ "tail-k" ] ~docv:"K"
             ~doc:"always-on tail forensics: retain the K slowest requests per \
                   lane per window as queryable dossiers (stats-RPC outliers \
                   view, /outliers); 0 disables (zero per-request cost). \
                   Implies spans for per-stage attribution")
  in
  let tail_threshold_us =
    Arg.(value & opt float 0.0
         & info [ "tail-threshold-us" ] ~docv:"USEC"
             ~doc:"with --tail-k: additionally retain every request whose \
                   sojourn breaches USEC, even outside the top K (0 = off)")
  in
  let tail_window_ms =
    Arg.(value & opt float 1000.0
         & info [ "tail-window-ms" ] ~docv:"MS"
             ~doc:"with --tail-k: the sliding-window length; the reservoir keeps \
                   the current and previous window so a fresh window never \
                   forgets the recent tail")
  in
  let tail_trace_out =
    Arg.(value & opt (some string) None
         & info [ "tail-trace-out" ] ~docv:"FILE"
             ~doc:"write a Chrome/Perfetto trace of only the retained outlier \
                   requests on exit (implies --tail-k 16 if not set)")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
             ~doc:"serve a plain-HTTP metrics plane on PORT (0 = ephemeral): \
                   GET /metrics (Prometheus text exposition), /outliers \
                   (tail dossiers JSON), /healthz")
  in
  let doc = "Live multicore RPC server over the Tiny Quanta fiber runtime." in
  let cmd =
    Cmd.v (Cmd.info "tq_serve" ~version:"1.2.0" ~doc)
      Term.(const serve $ host $ port $ cores $ lanes $ quantum $ ring $ rx_depth
            $ admission $ steal $ kv_keys $ pool_bufs $ pool_buf_bytes $ duration $ stats_out
            $ obs $ obs_capacity $ trace_out $ gc_events $ adaptive $ ctl_latency_us
            $ ctl_interval_ms $ heartbeat_ms $ missed_heartbeats $ faults
            $ tail_k $ tail_threshold_us $ tail_window_ms $ tail_trace_out
            $ metrics_port)
  in
  exit (Cmd.eval cmd)
