(* tq_expo_lint: promtool-style checker for Prometheus text exposition.

   Reads the exposition from FILE (or stdin with no argument / "-"),
   runs the same structural checks the exposition renderer's tests use
   (Tq_obs.Expo.lint: counter naming, declared families, cumulative
   +Inf-terminated histograms), and exits non-zero on any problem —
   the CI scrape job pipes `curl /metrics` through this. *)

open Cmdliner

let read_all ic =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 4096
     done
   with End_of_file -> ());
  Buffer.contents b

let lint file quiet =
  let body =
    match file with
    | None | Some "-" -> read_all stdin
    | Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_all ic)
  in
  if String.trim body = "" then begin
    Printf.eprintf "tq_expo_lint: empty exposition\n";
    exit 1
  end;
  match Tq_obs.Expo.lint body with
  | [] ->
      if not quiet then
        Printf.printf "tq_expo_lint: OK (%d lines)\n"
          (List.length (String.split_on_char '\n' body));
      exit 0
  | problems ->
      List.iter (fun p -> Printf.eprintf "tq_expo_lint: %s\n" p) problems;
      exit 1

let () =
  let file =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"exposition file; omit or use - for stdin")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"no output on success") in
  let doc = "Lint Prometheus text exposition (counter naming, families, histograms)." in
  let cmd =
    Cmd.v (Cmd.info "tq_expo_lint" ~version:"1.0.0" ~doc)
      Term.(const lint $ file $ quiet)
  in
  exit (Cmd.eval cmd)
