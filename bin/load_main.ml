(* tq_load: open-loop Poisson load generator for tq_serve.

   Offers a fixed request rate regardless of how fast the server
   answers, then reports achieved throughput and the per-class latency
   ladder.  `--json FILE` writes the single-run benchmark report (the
   committed BENCH_serve.json lane sweep embeds these, via
   `bench/main.exe --serve-bench`); `--lanes N` records the server's
   dispatcher lane count in that report;
   `--dashboard` renders SLO burn rates live; `--stats-interval SEC`
   polls the server's Stats RPC; `--trace FILE` fetches the server's
   span trace (server must run with --obs) for Perfetto. *)

open Cmdliner

let parse_slo s =
  (* NAME:LATENCY_US:GOODPUT, e.g. p99:500:0.99 *)
  match
    Scanf.sscanf_opt s "%[^:]:%f:%f" (fun name lat_us goodput ->
        { Tq_obs.Slo.name; latency_ns = int_of_float (lat_us *. 1e3); goodput })
  with
  | Some o -> o
  | None ->
      Printf.eprintf "bad --slo %S (expected NAME:LATENCY_US:GOODPUT)\n" s;
      exit 1

let run host port rate connections warmup measure grace seed mix_spec spin_us
    heavy_frac heavy_spin_us server_lanes json_out quiet slo_specs slo_strict stats_interval dashboard stats_json
    trace_out breakdown breakdown_json control outliers_n =
  let mix =
    match mix_spec with
    | None -> Tq_serve.Load_gen.default_mix
    | Some s -> (
        match Scanf.sscanf_opt s "%f,%f,%f" (fun a b c -> (a, b, c)) with
        | Some (echo, kv, tpcc) ->
            { Tq_serve.Load_gen.default_mix with echo; kv; tpcc }
        | None ->
            Printf.eprintf "bad --mix %S (expected ECHO,KV,TPCC weights)\n" s;
            exit 1)
  in
  let mix =
    {
      mix with
      Tq_serve.Load_gen.echo_spin_ns = Tq_util.Time_unit.us spin_us;
      echo_heavy = heavy_frac;
      echo_heavy_spin_ns = Tq_util.Time_unit.us heavy_spin_us;
    }
  in
  let stats_interval =
    (* --stats-json needs at least one poll even when no interval was
       asked for; poll once a second then. *)
    match (stats_interval, stats_json) with
    | None, Some _ -> Some 1.0
    | si, _ -> si
  in
  let config =
    {
      Tq_serve.Load_gen.host;
      port;
      connections;
      rate_rps = rate;
      warmup_s = warmup;
      measure_s = measure;
      grace_s = grace;
      seed = Int64.of_int seed;
      mix;
      slo = List.map parse_slo slo_specs;
      stats_interval_s = stats_interval;
      dashboard;
      server_lanes;
    }
  in
  let r = Tq_serve.Load_gen.run config in
  if not quiet then begin
    Printf.printf
      "tq_load: offered %.0f rps for %gs -> achieved %.0f rps (%d ok, %d shed, %d \
       errors, %d outstanding)\n"
      rate measure r.throughput_rps r.ok r.shed r.errors r.outstanding;
    print_string (Tq_obs.Latency.dump r.latency);
    List.iter
      (fun (rep : Tq_obs.Slo.report) ->
        Printf.printf
          "slo %-10s target p(lat<=%.0fus) >= %.3f   compliance %.4f   burn %.2fx%s\n"
          rep.objective.name
          (float_of_int rep.objective.latency_ns /. 1e3)
          rep.objective.goodput rep.compliance rep.burn_rate
          (if rep.window_total > 0 && rep.burn_rate > 1.0 then "  BREACH" else ""))
      r.slo_reports;
    if stats_interval <> None then
      Printf.printf "tq_load: %d stats polls collected\n" (List.length r.stats_polls)
  end;
  (* Tail forensics: fetch after the run so the reservoirs cover the
     measurement window.  The text view prints, the JSON view embeds in
     the --json report (server needs --tail-k). *)
  let outlier_json =
    match outliers_n with
    | None -> None
    | Some n -> (
        try
          let c = Tq_serve.Client.connect ~host ~port () in
          let fetch view = Tq_serve.Client.stats ~view c in
          print_string
            (fetch (Tq_serve.Protocol.Stats_outliers_text { limit = n }));
          let body = fetch (Tq_serve.Protocol.Stats_outliers { limit = n }) in
          Tq_serve.Client.close c;
          Some body
        with e ->
          Printf.eprintf "tq_load: outliers fetch failed: %s\n"
            (Printexc.to_string e);
          None)
  in
  (match json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Tq_serve.Load_gen.to_json ?outliers:outlier_json config r);
      close_out oc;
      if not quiet then Printf.printf "tq_load: wrote %s\n" path
  | None -> ());
  (match stats_json with
  | Some path -> (
      match List.rev r.stats_polls with
      | (_, body) :: _ ->
          let oc = open_out path in
          output_string oc body;
          close_out oc;
          if not quiet then Printf.printf "tq_load: wrote server stats to %s\n" path
      | [] -> Printf.eprintf "tq_load: no stats polls succeeded, %s not written\n" path)
  | None -> ());
  (match trace_out with
  | Some path -> (
      try
        let c = Tq_serve.Client.connect ~host ~port () in
        let body = Tq_serve.Client.stats ~view:Tq_serve.Protocol.Stats_trace c in
        Tq_serve.Client.close c;
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        if not quiet then
          Printf.printf "tq_load: wrote server span trace to %s (%d bytes)\n" path
            (String.length body)
      with e ->
        Printf.eprintf "tq_load: trace fetch failed: %s\n" (Printexc.to_string e))
  | None -> ());
  (* Per-stage sojourn decomposition, fetched after the run so the
     server's span buffers cover the measurement window. *)
  (if breakdown || breakdown_json <> None then
     try
       let c = Tq_serve.Client.connect ~host ~port () in
       let fetch view = Tq_serve.Client.stats ~view c in
       if breakdown then
         print_string (fetch Tq_serve.Protocol.Stats_breakdown_text);
       (match breakdown_json with
       | Some path ->
           let body = fetch Tq_serve.Protocol.Stats_breakdown in
           let oc = open_out path in
           output_string oc body;
           close_out oc;
           if not quiet then Printf.printf "tq_load: wrote stage breakdown to %s\n" path
       | None -> ());
       Tq_serve.Client.close c
     with e ->
       Printf.eprintf "tq_load: breakdown fetch failed: %s\n" (Printexc.to_string e));
  (* The controller's own view of the run: what the server's feedback
     loop did while we were loading it (needs tq_serve --adaptive). *)
  (if control then
     try
       let c = Tq_serve.Client.connect ~host ~port () in
       let body = Tq_serve.Client.stats ~view:Tq_serve.Protocol.Stats_control c in
       Tq_serve.Client.close c;
       Printf.printf "tq_load: controller state: %s\n" body
     with e ->
       Printf.eprintf "tq_load: control fetch failed: %s\n" (Printexc.to_string e));
  if r.received = 0 then begin
    Printf.eprintf "tq_load: no responses received\n";
    exit 1
  end;
  (* --slo-strict turns a monitored breach into a CI-visible failure:
     any SLO whose window burned through its error budget fails the run. *)
  if slo_strict then begin
    let breached =
      List.filter
        (fun (rep : Tq_obs.Slo.report) -> rep.window_total > 0 && rep.burn_rate > 1.0)
        r.slo_reports
    in
    if breached <> [] then begin
      List.iter
        (fun (rep : Tq_obs.Slo.report) ->
          Printf.eprintf "tq_load: SLO %s breached (burn %.2fx over %d samples)\n"
            rep.objective.name rep.burn_rate rep.window_total)
        breached;
      exit 3
    end
  end

let () =
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"server address") in
  let port = Arg.(value & opt int 7770 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"server port") in
  let rate =
    Arg.(value & opt float 50_000.0
         & info [ "r"; "rate" ] ~docv:"RPS" ~doc:"offered request rate (Poisson)")
  in
  let connections =
    Arg.(value & opt int 8 & info [ "c"; "connections" ] ~docv:"N" ~doc:"pipelined connections")
  in
  let warmup = Arg.(value & opt float 0.5 & info [ "warmup-s" ] ~doc:"warmup window (not recorded)") in
  let measure = Arg.(value & opt float 2.0 & info [ "d"; "duration-s" ] ~doc:"measurement window") in
  let grace = Arg.(value & opt float 2.0 & info [ "grace-s" ] ~doc:"post-window drain wait") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let mix =
    Arg.(value & opt (some string) None
         & info [ "mix" ] ~docv:"E,K,T" ~doc:"echo,kv,tpcc weights (default 0.70,0.25,0.05)")
  in
  let spin =
    Arg.(value & opt float 1.0 & info [ "spin-us" ] ~doc:"server-side spin per echo request")
  in
  let heavy_frac =
    Arg.(value & opt float 0.0
         & info [ "heavy-frac" ]
             ~doc:"extra mix weight of heavy echo requests (skewed offered load)")
  in
  let heavy_spin =
    Arg.(value & opt float 0.0
         & info [ "heavy-spin-us" ] ~doc:"server-side spin per heavy echo request")
  in
  let server_lanes =
    Arg.(value & opt int 1
         & info [ "lanes" ] ~docv:"N"
             ~doc:"dispatcher lane count the target tq_serve was started with \
                   (report metadata only — recorded as server_lanes in --json \
                   output so benchmark reports are self-describing)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"write the benchmark report to FILE")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"suppress the human-readable report") in
  let slo =
    Arg.(value & opt_all string []
         & info [ "slo" ] ~docv:"NAME:LAT_US:GOODPUT"
             ~doc:"latency SLO to monitor (repeatable), e.g. p99:500:0.99; \
                   default default:1000:0.99")
  in
  let slo_strict =
    Arg.(value & flag
         & info [ "slo-strict" ]
             ~doc:"exit 3 when any monitored --slo target burns through its \
                   error budget (burn rate > 1x) over the measurement window; \
                   turns SLO monitoring into a pass/fail gate for CI")
  in
  let stats_interval =
    Arg.(value & opt (some float) None
         & info [ "stats-interval" ] ~docv:"SEC"
             ~doc:"poll the server's Stats RPC every SEC seconds")
  in
  let dashboard =
    Arg.(value & flag
         & info [ "dashboard" ]
             ~doc:"live ANSI dashboard on stderr: SLO burn rate, goodput window, \
                   achieved throughput")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
             ~doc:"write the last polled server stats snapshot to FILE")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"after the run, fetch the server's span trace (Stats RPC) and \
                   write Chrome/Perfetto JSON to FILE (server needs --obs)")
  in
  let breakdown =
    Arg.(value & flag
         & info [ "breakdown" ]
             ~doc:"after the run, fetch the server's per-stage sojourn \
                   decomposition (parse/dispatch/ring-hop/first-run-wait/\
                   service/preempt/reply-flush) and print the table (server \
                   needs --obs)")
  in
  let breakdown_json =
    Arg.(value & opt (some string) None
         & info [ "breakdown-json" ] ~docv:"FILE"
             ~doc:"write the per-stage decomposition as JSON \
                   (BENCH_breakdown.json shape) to FILE (server needs --obs)")
  in
  let control =
    Arg.(value & flag
         & info [ "control" ]
             ~doc:"after the run, fetch the server's live controller state \
                   (Stats RPC control view) and print it (server needs \
                   --adaptive)")
  in
  let outliers =
    Arg.(value & opt (some int) None
         & info [ "outliers" ] ~docv:"N"
             ~doc:"after the run, fetch the server's N slowest retained \
                   requests as forensic dossiers (0 = all retained): print \
                   the table and embed the JSON in the --json report (server \
                   needs --tail-k)")
  in
  let doc = "Open-loop Poisson load generator for tq_serve." in
  let cmd =
    Cmd.v (Cmd.info "tq_load" ~version:"1.3.0" ~doc)
      Term.(const run $ host $ port $ rate $ connections $ warmup $ measure $ grace
            $ seed $ mix $ spin $ heavy_frac $ heavy_spin $ server_lanes $ json $ quiet $ slo $ slo_strict
            $ stats_interval $ dashboard $ stats_json $ trace $ breakdown
            $ breakdown_json $ control $ outliers)
  in
  exit (Cmd.eval cmd)
