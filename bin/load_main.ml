(* tq_load: open-loop Poisson load generator for tq_serve.

   Offers a fixed request rate regardless of how fast the server
   answers, then reports achieved throughput and the per-class latency
   ladder.  `--json FILE` writes the BENCH_serve.json report. *)

open Cmdliner

let run host port rate connections warmup measure grace seed mix_spec spin_us json_out
    quiet =
  let mix =
    match mix_spec with
    | None -> Tq_serve.Load_gen.default_mix
    | Some s -> (
        match Scanf.sscanf_opt s "%f,%f,%f" (fun a b c -> (a, b, c)) with
        | Some (echo, kv, tpcc) ->
            { Tq_serve.Load_gen.default_mix with echo; kv; tpcc }
        | None ->
            Printf.eprintf "bad --mix %S (expected ECHO,KV,TPCC weights)\n" s;
            exit 1)
  in
  let mix = { mix with echo_spin_ns = Tq_util.Time_unit.us spin_us } in
  let config =
    {
      Tq_serve.Load_gen.host;
      port;
      connections;
      rate_rps = rate;
      warmup_s = warmup;
      measure_s = measure;
      grace_s = grace;
      seed = Int64.of_int seed;
      mix;
    }
  in
  let r = Tq_serve.Load_gen.run config in
  if not quiet then begin
    Printf.printf
      "tq_load: offered %.0f rps for %gs -> achieved %.0f rps (%d ok, %d shed, %d \
       errors, %d outstanding)\n"
      rate measure r.throughput_rps r.ok r.shed r.errors r.outstanding;
    print_string (Tq_obs.Latency.dump r.latency)
  end;
  (match json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Tq_serve.Load_gen.to_json config r);
      close_out oc;
      if not quiet then Printf.printf "tq_load: wrote %s\n" path
  | None -> ());
  if r.received = 0 then begin
    Printf.eprintf "tq_load: no responses received\n";
    exit 1
  end

let () =
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"server address") in
  let port = Arg.(value & opt int 7770 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"server port") in
  let rate =
    Arg.(value & opt float 50_000.0
         & info [ "r"; "rate" ] ~docv:"RPS" ~doc:"offered request rate (Poisson)")
  in
  let connections =
    Arg.(value & opt int 8 & info [ "c"; "connections" ] ~docv:"N" ~doc:"pipelined connections")
  in
  let warmup = Arg.(value & opt float 0.5 & info [ "warmup-s" ] ~doc:"warmup window (not recorded)") in
  let measure = Arg.(value & opt float 2.0 & info [ "d"; "duration-s" ] ~doc:"measurement window") in
  let grace = Arg.(value & opt float 2.0 & info [ "grace-s" ] ~doc:"post-window drain wait") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let mix =
    Arg.(value & opt (some string) None
         & info [ "mix" ] ~docv:"E,K,T" ~doc:"echo,kv,tpcc weights (default 0.70,0.25,0.05)")
  in
  let spin =
    Arg.(value & opt float 1.0 & info [ "spin-us" ] ~doc:"server-side spin per echo request")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"write the benchmark report to FILE")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"suppress the human-readable report") in
  let doc = "Open-loop Poisson load generator for tq_serve." in
  let cmd =
    Cmd.v (Cmd.info "tq_load" ~version:"1.1.0" ~doc)
      Term.(const run $ host $ port $ rate $ connections $ warmup $ measure $ grace
            $ seed $ mix $ spin $ json $ quiet)
  in
  exit (Cmd.eval cmd)
