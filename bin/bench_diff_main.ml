(* tq_bench_diff: compare a fresh benchmark report against a committed
   baseline with per-metric noise tolerances.

   Exit 0 when every compared field is within tolerance and every bound
   holds, 1 otherwise — the CI gate against silent performance and
   accounting regressions:

     tq_bench_diff --baseline BENCH_obs_serve.json --fresh fresh.json \
       --tolerance 0.30 --tolerance '*_p99*=0.95' \
       --bound 'disabled_minor_words_per_run=0.01' *)

open Cmdliner

let parse_rule what s =
  (* Either a bare FRAC (sets the default) or PATTERN=FRAC. *)
  match String.index_opt s '=' with
  | None -> (
      match float_of_string_opt s with
      | Some f -> `Default f
      | None ->
          Printf.eprintf "bad --%s %S (expected FRAC or PATTERN=FRAC)\n" what s;
          exit 2)
  | Some eq -> (
      let pat = String.sub s 0 eq in
      let v = String.sub s (eq + 1) (String.length s - eq - 1) in
      match float_of_string_opt v with
      | Some f -> `Rule (pat, f)
      | None ->
          Printf.eprintf "bad --%s %S (value %S is not a number)\n" what s v;
          exit 2)

let load what path =
  match Tq_util.Json.of_file path with
  | Ok j -> j
  | Error msg ->
      Printf.eprintf "tq_bench_diff: cannot read %s %s: %s\n" what path msg;
      exit 2

let run baseline_path fresh_path tolerances bounds ignores abs_eps verbose quiet =
  let baseline = load "baseline" baseline_path in
  let fresh = load "fresh report" fresh_path in
  let default_rel, rules =
    List.fold_left
      (fun (d, rules) spec ->
        match parse_rule "tolerance" spec with
        | `Default f -> (f, rules)
        | `Rule (p, f) -> (d, rules @ [ (p, f) ]))
      (Tq_util.Bench_diff.default_config.default_rel, [])
      tolerances
  in
  let bounds =
    List.map
      (fun spec ->
        match parse_rule "bound" spec with
        | `Rule (p, f) -> (p, f)
        | `Default _ ->
            Printf.eprintf "bad --bound %S (expected PATTERN=MAX)\n" spec;
            exit 2)
      bounds
  in
  let config =
    {
      Tq_util.Bench_diff.default_rel;
      rules;
      bounds;
      ignore_paths = Tq_util.Bench_diff.default_config.ignore_paths @ ignores;
      abs_eps;
    }
  in
  let findings = Tq_util.Bench_diff.compare ~config ~baseline ~fresh () in
  if not quiet then begin
    Printf.printf "tq_bench_diff: %s vs %s\n" baseline_path fresh_path;
    print_string (Tq_util.Bench_diff.render ~verbose findings)
  end;
  if Tq_util.Bench_diff.passed findings then 0 else 1

let () =
  let baseline =
    Arg.(required & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE" ~doc:"committed baseline BENCH_*.json")
  in
  let fresh =
    Arg.(required & opt (some string) None
         & info [ "fresh" ] ~docv:"FILE" ~doc:"freshly generated report to check")
  in
  let tolerance =
    Arg.(value & opt_all string []
         & info [ "tolerance" ] ~docv:"FRAC|PATTERN=FRAC"
             ~doc:"relative tolerance: a bare fraction sets the default (0.25), \
                   PATTERN=FRAC (repeatable, '*' globs, first match wins) \
                   overrides per dotted field path, e.g. 'latency.*_p99*=0.95'")
  in
  let bound =
    Arg.(value & opt_all string []
         & info [ "bound" ] ~docv:"PATTERN=MAX"
             ~doc:"hard upper bound on a fresh numeric field (repeatable); a \
                   pattern matching no field is itself a failure, e.g. \
                   'disabled_minor_words_per_run=0.01'")
  in
  let ignore_ =
    Arg.(value & opt_all string []
         & info [ "ignore" ] ~docv:"PATTERN"
             ~doc:"exclude matching field paths from comparison (repeatable); \
                   generated_at is always excluded")
  in
  let abs_eps =
    Arg.(value & opt float 1e-9
         & info [ "abs-eps" ] ~docv:"EPS"
             ~doc:"absolute slack under which any numeric difference passes \
                   (avoids 0-vs-epsilon false alarms)")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"also print passing comparisons")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"exit code only") in
  let doc = "Diff two benchmark reports under per-metric noise tolerances." in
  let exits =
    Cmd.Exit.info 0
      ~doc:"every compared field is within tolerance and every bound holds"
    :: Cmd.Exit.info 1
         ~doc:"regression gate tripped: a field out of tolerance, a bound \
               breached, a baseline field missing from the fresh report, or \
               a schema_version mismatch"
    :: Cmd.Exit.info 2
         ~doc:"input error: unreadable or malformed report, or a bad \
               $(b,--tolerance)/$(b,--bound) specification"
    :: Cmd.Exit.defaults
  in
  let cmd =
    Cmd.v (Cmd.info "tq_bench_diff" ~version:"1.2.0" ~doc ~exits)
      Term.(const run $ baseline $ fresh $ tolerance $ bound $ ignore_ $ abs_eps
            $ verbose $ quiet)
  in
  exit (Cmd.eval' cmd)
